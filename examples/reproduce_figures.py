"""Regenerate the paper's evaluation figures as text tables.

Runs the same experiment code the benchmark harness uses and prints every
figure (4-11) plus the two ablations.  With default settings this takes
several minutes because it trains every model variant on three benchmarks;
pass ``--quick`` to run a reduced configuration.

Run with:  python examples/reproduce_figures.py [--quick] [--figures figure4,figure11]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.figures import ALL_FIGURES


def quick_config() -> ExperimentConfig:
    """A reduced configuration for a fast end-to-end pass."""
    return ExperimentConfig(
        query_counts={"tpcds": 1500, "job": 800, "tpcc": 800},
        template_counts={"tpcds": 40, "job": 30, "tpcc": 12},
        batch_size=10,
        seed=7,
        fast_models=True,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a reduced configuration")
    parser.add_argument(
        "--figures",
        default=",".join(ALL_FIGURES),
        help="comma-separated subset of: " + ", ".join(ALL_FIGURES),
    )
    args = parser.parse_args()

    config = quick_config() if args.quick else default_config()
    requested = [name.strip() for name in args.figures.split(",") if name.strip()]
    unknown = [name for name in requested if name not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}; available: {sorted(ALL_FIGURES)}")

    for name in requested:
        runner = ALL_FIGURES[name]
        print(f"\nRunning {name} ...")
        figure = runner(config)
        print(figure.render())


if __name__ == "__main__":
    main()
