"""Model lifecycle: ship a pre-trained model, detect drift, retrain on site.

Scenario (the paper's "DBMS Integration & Broader Impact" section): the DBMS
vendor pre-trains a LearnedWMP model on analytical sample workloads (TPC-DS)
and ships it.  The customer's site, however, runs a different analytical
workload — join-heavy IMDB-style reporting (JOB) — whose plans and memory
profile the shipped model has never seen.  The deployed model keeps observing
the local query log and its own prediction errors; once the template mix or
the error drifts past the thresholds, the lifecycle manager retrains a new
version on the combined corpus.

Run with:  python examples/model_lifecycle.py
"""

from __future__ import annotations

from repro import LearnedWMP, generate_dataset, make_workloads
from repro.integration import ModelLifecycleManager

SEED = 17
BATCH_SIZE = 10


def model_factory() -> LearnedWMP:
    # Ridge keeps the regressor additive in the template counts, which lets a
    # model retrained on a *mixed* analytical+transactional corpus transfer to
    # purely transactional batches (tree ensembles cannot extrapolate to
    # template-count combinations they never saw).
    return LearnedWMP(
        regressor="ridge", n_templates=40, batch_size=BATCH_SIZE, random_state=SEED, fast=True
    )


def main() -> None:
    print("Vendor side: pre-training on analytical sample workloads (TPC-DS) ...")
    vendor_dataset = generate_dataset("tpcds", 2_500, seed=SEED)
    manager = ModelLifecycleManager(
        model_factory=model_factory,
        min_new_records=400,
        batch_size=BATCH_SIZE,
        seed=SEED,
    )
    shipped = manager.bootstrap(vendor_dataset.train_records)
    print(
        f"  shipped model: version {shipped.version}, "
        f"trained on {shipped.n_training_records} queries, "
        f"validation MAPE {shipped.validation_mape:.1f}%"
    )

    print("\nCustomer site: the local workload is join-heavy reporting (JOB) ...")
    site_dataset = generate_dataset("job", 3_000, seed=SEED + 1)
    site_workloads = make_workloads(site_dataset.train_records, BATCH_SIZE, seed=SEED)

    # The DBMS keeps predicting with the shipped model and feeding back actuals.
    for workload in site_workloads[:60]:
        predicted = manager.predict_workload(workload)
        manager.observe_feedback(predicted, workload.actual_memory_mb or 0.0)
    manager.observe(site_dataset.train_records[:1800])

    decision = manager.should_retrain()
    print(f"  observed {manager.n_new_records} new query-log records")
    if decision.histogram_drift is not None:
        print(
            f"  template-mix drift score : {decision.histogram_drift.score:.2f} "
            f"(threshold {decision.histogram_drift.threshold})"
        )
    if decision.error_drift is not None:
        print(
            f"  rolling prediction MAPE  : {decision.error_drift.score:.1f}% "
            f"(threshold {decision.error_drift.threshold:.0f}%)"
        )
    print(f"  retrain? {decision.retrain} — {decision.reason}")

    version = manager.maybe_retrain()
    if version is None:
        print("\nNo retrain was necessary.")
        return

    print(
        f"\nRetrained on site: version {version.version} "
        f"({version.n_training_records} training queries, reason: {version.reason})"
    )

    # Compare shipped vs retrained on the site's future (test) workloads.
    future = make_workloads(site_dataset.test_records, BATCH_SIZE, seed=SEED + 2)
    shipped_metrics = shipped.model.evaluate(future)
    retrained_metrics = version.model.evaluate(future)
    print("\nAccuracy on the site's future reporting workloads:")
    print(f"  shipped (analytics-only) model : MAPE {shipped_metrics['mape']:.1f}%")
    print(f"  retrained model                : MAPE {retrained_metrics['mape']:.1f}%")
    print(
        "\nThis is the deployment loop the paper describes: accuracy may be modest\n"
        "out of the box and improves as the model retrains on the operational\n"
        "query log."
    )


if __name__ == "__main__":
    main()
