"""HTTP gateway walkthrough: serve over the wire, promote over admin routes.

Walks the network front end to end, inside one process for reproducibility:

1. train two model versions and register both,
2. stand up an :class:`~repro.serving.http.gateway.HttpGateway` over an
   asyncio prediction server (ephemeral port),
3. drive it with a :class:`~repro.serving.http.client.GatewayClient` — the
   same ``Predictor`` protocol as in-process, now over HTTP/1.1 JSON —
   and check the answers are bit-identical to the in-process path,
4. replay load through the gateway with the stock ``LoadGenerator``
   (identical open-loop semantics, latencies now include the wire),
5. hot-swap to version 2 and roll back through ``/v1/admin`` routes,
6. scrape ``/v1/telemetry`` — backend report + gateway transport counters.

Run with:  PYTHONPATH=src python examples/http_gateway.py
"""

from __future__ import annotations

from repro import (
    AsyncPredictionServer,
    GatewayClient,
    GatewayConfig,
    HttpGateway,
    LearnedWMP,
    LoadGenerator,
    ModelRegistry,
    PredictionRequest,
    generate_dataset,
    make_workloads,
)
from repro.api import CachePolicy
from repro.exceptions import DeadlineExceededError
from repro.workloads.replay import replay_requests_from_workloads

BENCHMARK = "tpcds"
N_QUERIES = 1_000
BATCH_SIZE = 10
N_REQUESTS = 200
TARGET_QPS = 200.0
SEED = 7


def main() -> None:
    print(f"Generating and executing {N_QUERIES} {BENCHMARK.upper()} queries ...")
    dataset = generate_dataset(BENCHMARK, N_QUERIES, seed=SEED)
    workloads = make_workloads(dataset.test_records, BATCH_SIZE, seed=SEED)

    print("\nTraining two model versions ...")
    v1 = LearnedWMP(
        regressor="ridge", n_templates=24, batch_size=BATCH_SIZE, random_state=SEED
    )
    v1.fit(dataset.train_records)
    v2 = LearnedWMP(
        regressor="xgb", n_templates=24, batch_size=BATCH_SIZE, random_state=SEED, fast=True
    )
    v2.fit(dataset.train_records)

    registry = ModelRegistry()
    registry.register("default", v1)  # version 1, auto-promoted
    registry.register("default", v2)  # version 2, passive until promoted

    with AsyncPredictionServer(registry, model_name="default") as server:
        with HttpGateway(server, config=GatewayConfig(port=0)) as gateway:
            print(f"\nGateway listening on {gateway.url}")
            with GatewayClient(gateway.url) as client:
                health = client.healthz()
                print(f"  /healthz: {health}")

                # -- one typed request over the wire --------------------------
                request = PredictionRequest.of(workloads[0], request_id="ex-1")
                over_wire = client.predict(request)
                in_process = server.predict(
                    PredictionRequest.of(workloads[0], request_id="ex-1")
                )
                print(
                    f"  prediction: {over_wire.memory_mb:.2f} MB from "
                    f"{over_wire.model_name} v{over_wire.model_version} "
                    f"(cache_hit={over_wire.cache_hit})"
                )
                assert over_wire.memory_mb == in_process.memory_mb  # bit-identical
                print("  parity: over-wire answer is bit-identical to in-process")

                # -- deadline propagation ------------------------------------
                try:
                    client.predict(
                        PredictionRequest.of(
                            workloads[1], deadline_s=1e-9, cache_policy=CachePolicy.BYPASS
                        )
                    )
                except DeadlineExceededError:
                    print("  deadline: expired request shed at the gateway with 504")

                # -- open-loop load over HTTP --------------------------------
                print(f"\nReplaying {N_REQUESTS} requests at {TARGET_QPS:.0f} req/s over HTTP ...")
                replay = replay_requests_from_workloads(
                    workloads, n_requests=N_REQUESTS, repeat_fraction=0.7, seed=SEED
                )
                report = LoadGenerator(
                    client, replay, qps=TARGET_QPS, benchmark=BENCHMARK, deadline_s=0.5
                ).run()
                print(report.render())

                # -- hot swap over the admin routes --------------------------
                print("\nPromoting v2 over POST /v1/admin/promote ...")
                client.promote("default", 2)
                swapped = client.predict(
                    PredictionRequest.of(workloads[2], cache_policy=CachePolicy.BYPASS)
                )
                print(f"  now answering from v{swapped.model_version}")
                client.rollback("default")
                print("  rolled back to v1")
                lineage = client.lineage("default")
                print(f"  lineage: {[(e['version'], e['active']) for e in lineage]}")

                # -- the full scrape -----------------------------------------
                scrape = client.telemetry()
                gateway_stats = scrape["gateway"]
                print("\n/v1/telemetry scrape:")
                print(f"  backend requests    : {scrape['n_requests']}")
                print(f"  deadline misses     : {scrape['deadline_misses']}")
                print(f"  shed requests       : {scrape['shed_requests']}")
                print(f"  http requests       : {gateway_stats['http_requests']}")
                print(f"  http connections    : {gateway_stats['connections']}")
                print(f"  last request id     : {gateway_stats['last_request_id']}")
                print(f"  responses by status : {gateway_stats['responses_by_status']}")

    print("\nDone: gateway and server closed cleanly.")


if __name__ == "__main__":
    main()
