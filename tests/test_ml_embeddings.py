"""Tests for the co-occurrence word-embedding vectorizer."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.embeddings import WordEmbeddingVectorizer

_CORPUS = [
    "select sum(amount) from sales where store_id = 3",
    "select sum(amount) from sales where item_id = 7",
    "select count(*) from items where category = 'Books'",
    "select region from stores where store_id = 5",
    "update stores set region = 'West' where store_id = 2",
]


class TestWordEmbeddingVectorizer:
    def test_output_shape(self):
        vectorizer = WordEmbeddingVectorizer(embedding_dim=8)
        matrix = vectorizer.fit_transform(_CORPUS)
        assert matrix.shape == (len(_CORPUS), 8)

    def test_dimension_padding_when_vocabulary_small(self):
        vectorizer = WordEmbeddingVectorizer(embedding_dim=64)
        matrix = vectorizer.fit_transform(["select a from b", "select a from c"])
        assert matrix.shape[1] == 64
        assert np.all(np.isfinite(matrix))

    def test_similar_queries_closer_than_dissimilar(self):
        vectorizer = WordEmbeddingVectorizer(embedding_dim=8)
        matrix = vectorizer.fit_transform(_CORPUS)
        # The two sum-over-sales queries should be mutually closer than either
        # is to the UPDATE statement.
        d_similar = np.linalg.norm(matrix[0] - matrix[1])
        d_different = np.linalg.norm(matrix[0] - matrix[4])
        assert d_similar < d_different

    def test_unknown_tokens_give_zero_vector(self):
        vectorizer = WordEmbeddingVectorizer(embedding_dim=4)
        vectorizer.fit(_CORPUS)
        matrix = vectorizer.transform(["zzz qqq"])
        assert np.allclose(matrix, 0.0)

    def test_min_count_prunes_rare_tokens(self):
        vectorizer = WordEmbeddingVectorizer(embedding_dim=4, min_count=2)
        vectorizer.fit(_CORPUS)
        assert "category" not in vectorizer.vocabulary_  # appears once
        assert "select" in vectorizer.vocabulary_

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            WordEmbeddingVectorizer(embedding_dim=0)
        with pytest.raises(InvalidParameterError):
            WordEmbeddingVectorizer(window=0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            WordEmbeddingVectorizer().transform(["select 1"])

    def test_deterministic(self):
        a = WordEmbeddingVectorizer(embedding_dim=6).fit_transform(_CORPUS)
        b = WordEmbeddingVectorizer(embedding_dim=6).fit_transform(_CORPUS)
        assert np.allclose(a, b)
