"""The naive-loop serving oracle, shared by tests and benchmarks.

Three kinds of "what should the serving stack have answered?" reference
logic used to be re-implemented inline across the serving test modules and
``benchmarks/test_serving_throughput.py``; this module is the single copy:

* :class:`LookupPredictor` / :class:`CountingPredictor` and
  :func:`make_lookup_pool` — deterministic toy models and workload pools
  whose correct answer is readable off the workload itself;
* :func:`naive_loop_values` / :func:`naive_loop_qps` — the naive
  one-call-at-a-time loop every serving front is differentially tested (and
  benchmarked) against;
* :class:`NaiveServingOracle` — a deliberately naive, loop-and-linear-scan
  re-implementation of the :class:`repro.serving.kernel.PipelineKernel`
  *specification*.  It consumes the same events and emits the same action
  dataclasses, but shares no pipeline code with the kernel: the cache is a
  plain list scanned front to back, the pending queue is a list of dicts,
  every rule is written out as an explicit loop.  The hypothesis harness in
  ``tests/test_kernel_differential.py`` drives both machines with the same
  event sequence and requires bit-identical actions and counters.

The oracle intentionally favors obviousness over speed; if the kernel and
the oracle disagree, the bug is in whichever one strayed from the docstring
contract they both implement.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.workload import Workload
from repro.dbms.query_log import QueryRecord
from repro.exceptions import DeadlineExceededError, ServingError
from repro.serving.batcher import BatcherStats
from repro.serving.cache import CacheStats, workload_signature
from repro.serving.kernel import (
    BatchDone,
    BatchEntry,
    BatchFailed,
    CacheInvalidate,
    CacheWrite,
    Close,
    Complete,
    Fail,
    FlushBatch,
    ObserveBatch,
    ObserveQueueDepth,
    ServerConfig,
    Shed,
    Submit,
    SyncVersion,
    Tick,
)

__all__ = [
    "LookupPredictor",
    "CountingPredictor",
    "make_lookup_pool",
    "naive_loop_values",
    "naive_loop_qps",
    "NaiveServingOracle",
    "normalize_actions",
]


class LookupPredictor:
    """Answers every workload with its own ``actual_memory_mb``.

    The simplest possible "model": the correct prediction is readable off
    the request, so any serving-layer transformation of the answer is
    detectable exactly.
    """

    def predict_workload(self, workload) -> float:
        return float(workload.actual_memory_mb or 0.0)

    def predict(self, workloads):
        return [float(w.actual_memory_mb or 0.0) for w in workloads]


class CountingPredictor:
    """Constant predictor that counts predict calls and batch sizes."""

    def __init__(self, value: float = 32.0, delay_s: float = 0.0) -> None:
        self.value = value
        self.delay_s = delay_s
        self.calls = 0
        self.batch_sizes: list[int] = []
        self._lock = threading.Lock()

    def predict_workload(self, queries) -> float:
        with self._lock:
            self.calls += 1
            self.batch_sizes.append(1)
        if self.delay_s:
            time.sleep(self.delay_s)
        return self.value

    def predict(self, workloads):
        with self._lock:
            self.calls += 1
            self.batch_sizes.append(len(workloads))
        if self.delay_s:
            time.sleep(self.delay_s)
        return np.full(len(workloads), self.value)


class GatedLookupPredictor(LookupPredictor):
    """:class:`LookupPredictor` whose *first* batch blocks until released.

    Lets a test pile up flushed batches behind a busy model worker and
    observe — via ``order`` — the sequence they actually execute in.
    """

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        self.order: list[float] = []
        self._calls = 0
        self._lock = threading.Lock()

    def predict(self, workloads):
        with self._lock:
            self._calls += 1
            first = self._calls == 1
        if first:
            self.started.set()
            assert self.release.wait(5.0), "gated model never released"
        values = super().predict(workloads)
        self.order.extend(values)
        return values


def make_lookup_pool(size: int = 6) -> list[Workload]:
    """``size`` distinct single-query workloads with known demands.

    Each entry carries a distinct query text (the prediction cache keys on
    query content) and demand ``10 * (index + 1)`` MB, so a served answer
    identifies exactly which pool entry produced it.
    """
    return [
        Workload(
            queries=[
                QueryRecord(
                    sql=f"select {i} from t",
                    plan=None,
                    actual_memory_mb=10.0 * (i + 1),
                    optimizer_estimate_mb=0.0,
                )
            ],
            actual_memory_mb=10.0 * (i + 1),
        )
        for i in range(size)
    ]


def naive_loop_values(model, workloads) -> np.ndarray:
    """The naive one-call-at-a-time answers (the serving differential oracle)."""
    return np.array([model.predict_workload(w) for w in workloads], dtype=np.float64)


def naive_loop_qps(model, workloads) -> float:
    """Throughput of the naive one-call-at-a-time loop on ``workloads``."""
    start = time.perf_counter()
    for workload in workloads:
        model.predict_workload(workload)
    return len(workloads) / (time.perf_counter() - start)


def normalize_actions(actions) -> list:
    """A comparable form of a kernel/oracle action list.

    Every action dataclass compares by value already except :class:`Fail`,
    which carries an exception instance: two independently constructed
    errors with the same type and message must compare equal, so it is
    flattened to ``(rid, type name, message, shed)``.
    """
    normalized = []
    for action in actions:
        if isinstance(action, Fail):
            normalized.append(
                ("Fail", action.rid, type(action.error).__name__, str(action.error), action.shed)
            )
        else:
            normalized.append(action)
    return normalized


class NaiveServingOracle:
    """Loop-and-linear-scan reference implementation of the pipeline kernel.

    Same events in, same actions out as
    :class:`repro.serving.kernel.PipelineKernel`, implemented the dumbest
    defensible way: the prediction cache is a list of ``[key, value,
    stored_at]`` rows in recency order (front = least recent), pending and
    executing work are lists of dicts, and every pipeline rule is an
    explicit loop over them.
    """

    def __init__(self, config: ServerConfig | None = None, *, max_concurrent_batches: int = 1):
        self.config = config or ServerConfig()
        self.max_concurrent = max_concurrent_batches
        self.now = 0.0
        self.closing = False
        self.version = None
        self.generation = 0
        self.coalesced = 0
        self.next_batch_id = 1
        self.next_seq = 0
        # Stride fair-share state (only consulted when tenant_weights is set).
        self.tenant_pass: dict = {}
        self.vtime = 0
        # Pipeline state: naive containers only.
        self.cache_rows: list[list] = []  # [key, value, stored_at], recency order
        self.cache_enabled = self.config.enable_cache
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.inflight: dict = {}  # key -> leader entry dict
        self.pending: list[dict] = []
        self.executing: dict[int, dict] = {}  # batch_id -> {"entries": [...], "reason": str}
        # BatcherStats counters.
        self.requests = 0
        self.batches = 0
        self.size_flushes = 0
        self.deadline_flushes = 0
        self.close_flushes = 0
        self.max_batch_seen = 0
        self.shed = 0

    # -- event dispatch (mirrors PipelineKernel.handle) -----------------------------

    def handle(self, event) -> list:
        if isinstance(event, Submit):
            return self.submit(
                event.rid,
                event.workload,
                now=event.now,
                deadline_at=event.deadline_at,
                use_cache=event.use_cache,
                signature=event.signature,
                tenant=event.tenant,
                priority=event.priority,
            )
        if isinstance(event, Tick):
            return self.tick(event.now)
        if isinstance(event, SyncVersion):
            return self.sync_version(event.version, event.now)
        if isinstance(event, BatchDone):
            return self.batch_done(event.batch_id, event.started_at, event.values, event.now)
        if isinstance(event, BatchFailed):
            return self.batch_failed(event.batch_id, event.started_at, event.error, event.now)
        if isinstance(event, Close):
            return self.close(event.now)
        raise ValueError(f"unknown oracle event: {event!r}")

    # -- naive cache (list scans; counters mirror LRUTTLCache exactly) --------------

    def _cache_get(self, key):
        """(found, value): TTL-expired rows are dropped and counted."""
        for i, row in enumerate(self.cache_rows):
            if row[0] == key:
                ttl = self.config.cache_ttl_s
                if ttl is not None and self.now - row[2] > ttl:
                    del self.cache_rows[i]
                    self.expirations += 1
                    self.misses += 1
                    return False, None
                # Refresh recency: move the row to the back of the list.
                del self.cache_rows[i]
                self.cache_rows.append(row)
                self.hits += 1
                return True, row[1]
        self.misses += 1
        return False, None

    def _cache_put(self, key, value):
        for i, row in enumerate(self.cache_rows):
            if row[0] == key:
                del self.cache_rows[i]
                break
        self.cache_rows.append([key, value, self.now])
        if len(self.cache_rows) > self.config.cache_entries:
            self._cache_sweep()
        while len(self.cache_rows) > self.config.cache_entries:
            del self.cache_rows[0]
            self.evictions += 1

    def _cache_sweep(self):
        ttl = self.config.cache_ttl_s
        if ttl is None:
            return
        kept = []
        for row in self.cache_rows:
            if self.now - row[2] > ttl:
                self.expirations += 1
            else:
                kept.append(row)
        self.cache_rows = kept

    def cache_stats(self) -> CacheStats | None:
        if not self.cache_enabled:
            return None
        self._cache_sweep()
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            expirations=self.expirations,
            size=len(self.cache_rows),
            max_entries=self.config.cache_entries,
        )

    # -- events ----------------------------------------------------------------------

    def submit(
        self,
        rid,
        workload,
        *,
        now,
        deadline_at=None,
        use_cache=True,
        signature=None,
        tenant=None,
        priority=0,
    ):
        if self.closing:
            raise ServingError("cannot submit to a closed serving kernel")
        actions = self._advance(now)
        key = None
        if self.cache_enabled:
            key = signature if signature is not None else workload_signature(workload)
        if self.cache_enabled and use_cache:
            found, value = self._cache_get(key)
            if found:
                late = deadline_at is not None and self.now > deadline_at
                actions.append(Complete(rid, float(value), cache_hit=True, arrival=now, late=late))
                return actions
            leader = self.inflight.get(key)
            if leader is not None:
                self.coalesced += 1
                leader["followers"].append((rid, now, deadline_at))
                return actions
        if deadline_at is not None and self.now >= deadline_at:
            actions.append(Shed(rid, "admission"))
            return actions
        # Per-tenant max-inflight quota: recount the tenant's live entries
        # the naive way (scan everything) on every submit.
        cap = self.config.inflight_cap(tenant)
        if cap is not None:
            inflight = 0
            for entry in self.pending:
                if entry["tenant"] == tenant:
                    inflight += 1
            for batch in self.executing.values():
                for entry in batch["entries"]:
                    if entry["tenant"] == tenant:
                        inflight += 1
            if inflight >= cap:
                actions.append(Shed(rid, "admission", "queue_full"))
                return actions
        if (
            self.config.enable_batching
            and self.config.max_queue_depth is not None
            and len(self.pending) >= self.config.max_queue_depth
        ):
            # Bounded queue: the scheduling-worst follower-free queued entry
            # and the newcomer compete; the loser of the scheduling order
            # (lowest priority, latest deadline, newest seq) is shed.
            victim = None
            for entry in self.pending:
                if entry["followers"]:
                    continue
                if victim is None or self._order_key(entry) > self._order_key(victim):
                    victim = entry
            newcomer_key = (
                -priority,
                deadline_at if deadline_at is not None else float("inf"),
                float("inf"),
            )
            if victim is None or newcomer_key > self._order_key(victim):
                actions.append(Shed(rid, "admission", "queue_full"))
                return actions
            kept = []
            for entry in self.pending:
                if entry is not victim:
                    kept.append(entry)
            self.pending = kept
            self._shed_entry(victim, "queue", actions, reason="priority_evict")
        entry = {
            "rid": rid,
            "workload": workload,
            "key": key,
            "arrival": now,
            "enqueued_at": self.now,
            "deadline_at": deadline_at,
            "generation": self.generation,
            "tenant": tenant,
            "priority": priority,
            "seq": self.next_seq,
            "leads": False,
            "followers": [],
        }
        self.next_seq += 1
        self.requests += 1
        if self.cache_enabled and deadline_at is None and key not in self.inflight:
            self.inflight[key] = entry
            entry["leads"] = True
        if not self.config.enable_batching:
            actions.extend(self._flush([entry], "size"))
            return actions
        self.pending.append(entry)
        actions.append(ObserveQueueDepth(len(self.pending)))
        actions.extend(self._maybe_flush())
        return actions

    def tick(self, now):
        actions = self._advance(now)
        actions.extend(self._maybe_flush())
        return actions

    def sync_version(self, version, now):
        actions = self._advance(now)
        if version != self.version:
            if self.version is not None:
                self.generation += 1
                self.cache_rows = []
                self.inflight = {}
                for entry in self.pending:
                    entry["leads"] = False
                for batch in self.executing.values():
                    for entry in batch["entries"]:
                        entry["leads"] = False
                actions.append(CacheInvalidate(self.generation))
            self.version = version
        actions.extend(self._maybe_flush())
        return actions

    def batch_done(self, batch_id, started_at, values, now):
        actions = self._advance(now)
        live = self._finish_batch(batch_id, started_at, actions)
        if live:
            if len(values) != len(live):
                error = ServingError(
                    f"predict_batch returned {len(values)} predictions "
                    f"for a batch of {len(live)}"
                )
                for entry in live:
                    self._fail_entry(entry, error, actions)
            else:
                for entry, value in zip(live, values):
                    self._complete_entry(entry, float(value), actions)
        actions.extend(self._maybe_flush())
        return actions

    def batch_failed(self, batch_id, started_at, error, now):
        actions = self._advance(now)
        live = self._finish_batch(batch_id, started_at, actions)
        for entry in live:
            self._fail_entry(entry, error, actions)
        actions.extend(self._maybe_flush())
        return actions

    def close(self, now):
        self.closing = True
        actions = self._advance(now)
        actions.extend(self._maybe_flush())
        return actions

    # -- scheduling + introspection (compared against the kernel's) ------------------

    def next_wakeup(self):
        if not self.pending or not self.config.enable_batching:
            return None
        if len(self.executing) >= self.max_concurrent:
            return None
        if self._due():
            return self.now
        return self.pending[0]["enqueued_at"] + self.config.max_wait_s

    def idle(self) -> bool:
        return not self.pending and not self.executing

    def pending_count(self) -> int:
        return len(self.pending)

    def executing_count(self) -> int:
        return len(self.executing)

    def tenant_inflight(self) -> dict:
        """Per-tenant live entries, recounted naively from the containers."""
        counts: dict = {}
        for entry in self.pending:
            counts[entry["tenant"]] = counts.get(entry["tenant"], 0) + 1
        for batch in self.executing.values():
            for entry in batch["entries"]:
                counts[entry["tenant"]] = counts.get(entry["tenant"], 0) + 1
        return counts

    def batcher_stats(self) -> BatcherStats:
        return BatcherStats(
            requests=self.requests,
            batches=self.batches,
            size_flushes=self.size_flushes,
            deadline_flushes=self.deadline_flushes,
            close_flushes=self.close_flushes,
            max_batch_size_seen=self.max_batch_seen,
            shed_requests=self.shed,
        )

    # -- internal rules, written out as loops -----------------------------------------

    def _advance(self, now):
        if now > self.now:
            self.now = now
        actions = []
        still_pending = []
        for entry in self.pending:
            if entry["deadline_at"] is not None and entry["deadline_at"] <= self.now:
                self._shed_entry(entry, "queue", actions)
            else:
                still_pending.append(entry)
        self.pending = still_pending
        return actions

    def _order_key(self, entry):
        """The total scheduling order: priority desc, deadline asc, seq asc."""
        deadline = entry["deadline_at"] if entry["deadline_at"] is not None else float("inf")
        return (-entry["priority"], deadline, entry["seq"])

    def _shed_entry(self, entry, stage, actions, reason="deadline"):
        self.shed += 1
        self._clear_inflight(entry)
        actions.append(Shed(entry["rid"], stage, reason))

    def _clear_inflight(self, entry):
        if entry["leads"] and self.inflight.get(entry["key"]) is entry:
            del self.inflight[entry["key"]]
        entry["leads"] = False

    def _complete_entry(self, entry, value, actions):
        if self.cache_enabled and entry["generation"] == self.generation:
            self._cache_put(entry["key"], value)
            actions.append(CacheWrite(entry["key"], value))
        self._clear_inflight(entry)
        late = entry["deadline_at"] is not None and self.now > entry["deadline_at"]
        actions.append(
            Complete(entry["rid"], value, cache_hit=False, arrival=entry["arrival"], late=late)
        )
        for rid, arrival, deadline_at in entry["followers"]:
            late = deadline_at is not None and self.now > deadline_at
            actions.append(Complete(rid, value, cache_hit=True, arrival=arrival, late=late))

    def _fail_entry(self, entry, error, actions):
        self._clear_inflight(entry)
        actions.append(
            Fail(entry["rid"], error, shed=isinstance(error, DeadlineExceededError))
        )
        for rid, _arrival, _deadline_at in entry["followers"]:
            actions.append(Fail(rid, error, shed=False))

    def _finish_batch(self, batch_id, started_at, actions):
        batch = self.executing.pop(batch_id, None)
        if batch is None:
            raise ServingError(f"unknown batch id {batch_id}")
        live = []
        for entry in batch["entries"]:
            if entry["deadline_at"] is not None and entry["deadline_at"] <= started_at:
                self._shed_entry(entry, "execution", actions)
            else:
                live.append(entry)
        if live:
            self.batches += 1
            self.max_batch_seen = max(self.max_batch_seen, len(live))
            if batch["reason"] == "size":
                self.size_flushes += 1
            elif batch["reason"] == "close":
                self.close_flushes += 1
            else:
                self.deadline_flushes += 1
            actions.append(ObserveBatch(len(live)))
        return live

    def _due(self) -> bool:
        if not self.pending:
            return False
        if self.closing:
            return True
        if len(self.pending) >= self.config.max_batch_size:
            return True
        window_end = self.pending[0]["enqueued_at"] + self.config.max_wait_s
        if self.now >= window_end:
            return True
        for entry in self.pending:
            if entry["deadline_at"] is not None and entry["deadline_at"] < window_end:
                return True
        return False

    def _maybe_flush(self):
        actions = []
        while self.pending and len(self.executing) < self.max_concurrent and self._due():
            batch = self._cut_batch()
            if len(batch) == self.config.max_batch_size:
                reason = "size"
            elif self.closing:
                reason = "close"
            else:
                reason = "deadline"
            actions.extend(self._flush(batch, reason))
        return actions

    def _cut_batch(self):
        if self.config.tenant_weights is None:
            self.pending.sort(key=self._order_key)
            batch = self.pending[: self.config.max_batch_size]
            self.pending = self.pending[self.config.max_batch_size :]
            return batch
        # Weighted fair share: award batch slots one at a time with a
        # stride scheduler over the tenants present at the highest pending
        # priority (priority strictly dominates fairness).
        stride_scale = 1 << 16
        batch = []
        while self.pending and len(batch) < self.config.max_batch_size:
            top = None
            for entry in self.pending:
                if top is None or entry["priority"] > top:
                    top = entry["priority"]
            tenant = None
            best_rank = None
            for entry in self.pending:
                if entry["priority"] != top:
                    continue
                tenant_pass = max(self.tenant_pass.get(entry["tenant"], 0), self.vtime)
                rank = (tenant_pass, entry["tenant"] if entry["tenant"] is not None else "")
                if best_rank is None or rank < best_rank:
                    best_rank = rank
                    tenant = entry["tenant"]
            pick = None
            for entry in self.pending:
                if entry["priority"] != top or entry["tenant"] != tenant:
                    continue
                if pick is None or self._order_key(entry) < self._order_key(pick):
                    pick = entry
            kept = []
            for entry in self.pending:
                if entry is not pick:
                    kept.append(entry)
            self.pending = kept
            batch.append(pick)
            start = max(self.tenant_pass.get(tenant, 0), self.vtime)
            self.tenant_pass[tenant] = start + stride_scale // self.config.weight_of(tenant)
            self.vtime = start
        return batch

    def _flush(self, entries, reason):
        batch_id = self.next_batch_id
        self.next_batch_id += 1
        self.executing[batch_id] = {"entries": entries, "reason": reason}
        return [
            FlushBatch(
                batch_id,
                tuple(
                    BatchEntry(
                        entry["rid"], entry["workload"], entry["deadline_at"], entry["priority"]
                    )
                    for entry in entries
                ),
                reason,
            )
        ]
