"""Tests for the TPC-DS, JOB and TPC-C workload generators."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workloads.base import PredicateSpec, render_select
from repro.workloads.generator import (
    BENCHMARK_NAMES,
    PAPER_QUERY_COUNTS,
    build_benchmark,
    generate_dataset,
)
from repro.workloads.job import JOBGenerator, build_job_catalog
from repro.workloads.tpcc import TPCCGenerator, build_tpcc_catalog
from repro.workloads.tpcds import TPCDSGenerator, build_tpcds_catalog


class TestCatalogs:
    def test_tpcds_catalog_contents(self):
        catalog = build_tpcds_catalog()
        assert catalog.table("store_sales").row_count > 1_000_000
        assert catalog.has_index_on("item", "i_item_sk")
        assert len(catalog) >= 20

    def test_job_catalog_contents(self):
        catalog = build_job_catalog()
        assert catalog.table("cast_info").row_count > 10_000_000
        assert catalog.has_index_on("movie_keyword", "movie_id")
        assert len(catalog) >= 19

    def test_tpcc_catalog_contents(self):
        catalog = build_tpcc_catalog()
        assert catalog.table("order_line").row_count > catalog.table("orders").row_count
        assert catalog.has_index_on("stock", "s_w_id")
        assert len(catalog) == 9


class TestSeedTemplates:
    def test_tpcds_has_99_seed_templates(self):
        assert TPCDSGenerator().seed_template_count == 99

    def test_job_has_113_seed_queries(self):
        assert JOBGenerator().seed_template_count == 113

    def test_tpcc_covers_five_transaction_profiles(self):
        generator = TPCCGenerator()
        assert generator.seed_template_count >= 20

    def test_seed_templates_are_deterministic(self):
        a = TPCDSGenerator().spec(17)
        b = TPCDSGenerator().spec(17)
        assert a == b

    def test_tpcds_templates_reference_known_tables(self):
        generator = TPCDSGenerator()
        catalog = generator.catalog()
        for spec in generator.specs:
            for table, _alias in spec.tables:
                assert catalog.has_table(table)


class TestGeneration:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_generate_produces_requested_count(self, name):
        generator = build_benchmark(name)
        queries = generator.generate(25, seed=3)
        assert len(queries) == 25
        assert all(q.sql for q in queries)
        assert all(0 <= q.template_id < generator.seed_template_count for q in queries)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_generation_reproducible_with_seed(self, name):
        generator = build_benchmark(name)
        a = [q.sql for q in generator.generate(15, seed=9)]
        b = [q.sql for q in generator.generate(15, seed=9)]
        assert a == b

    def test_different_seeds_differ(self):
        generator = TPCDSGenerator()
        a = [q.sql for q in generator.generate(15, seed=1)]
        b = [q.sql for q in generator.generate(15, seed=2)]
        assert a != b

    def test_same_template_different_parameters(self):
        generator = TPCDSGenerator()
        rng = np.random.default_rng(0)
        first = generator.generate_one(5, rng)
        second = generator.generate_one(5, rng)
        assert first != second

    def test_tpcc_generates_dml_and_selects(self):
        generator = TPCCGenerator()
        statements = [q.sql for q in generator.generate(300, seed=1)]
        verbs = {sql.split()[0] for sql in statements}
        assert {"select", "insert", "update"} <= verbs

    def test_job_queries_join_on_title(self):
        generator = JOBGenerator()
        queries = generator.generate(20, seed=0)
        assert all("title t" in q.sql for q in queries)

    def test_invalid_count_rejected(self):
        with pytest.raises(WorkloadError):
            TPCDSGenerator().generate(0)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            build_benchmark("tpch")


class TestRenderSelect:
    def test_unknown_predicate_kind_raises(self):
        from repro.workloads.base import QueryTemplateSpec

        spec = QueryTemplateSpec(
            template_id=0,
            tables=(("t", "t"),),
            joins=(),
            predicates=(PredicateSpec("t.a", "bogus"),),
        )
        with pytest.raises(WorkloadError):
            render_select(spec, np.random.default_rng(0))

    def test_count_star_default_when_no_select_list(self):
        from repro.workloads.base import QueryTemplateSpec

        spec = QueryTemplateSpec(template_id=0, tables=(("t", "t"),), joins=(), predicates=())
        sql = render_select(spec, np.random.default_rng(0))
        assert sql.startswith("select count(*) from t")


class TestGenerateDataset:
    def test_split_sizes(self, tpcds_small):
        total = len(tpcds_small)
        assert total == 900
        assert len(tpcds_small.test_records) == pytest.approx(180, abs=2)
        assert len(tpcds_small.train_records) == total - len(tpcds_small.test_records)

    def test_records_fully_populated(self, tpcds_small):
        for record in tpcds_small.all_records[:50]:
            assert record.actual_memory_mb > 0
            assert record.optimizer_estimate_mb > 0
            assert record.benchmark == "tpcds"
            assert record.template_seed >= 0

    def test_paper_query_counts_exposed(self):
        assert PAPER_QUERY_COUNTS["tpcds"] == 93_000
        assert PAPER_QUERY_COUNTS["job"] == 2_300
        assert PAPER_QUERY_COUNTS["tpcc"] == 3_958

    def test_generator_instance_accepted(self):
        dataset = generate_dataset(TPCCGenerator(), 40, seed=2)
        assert dataset.name == "tpcc"
        assert len(dataset) == 40
