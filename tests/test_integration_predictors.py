"""Tests for the integration predictor protocol and reference predictors."""

import pytest

from repro.core.model import LearnedWMP
from repro.core.single_wmp import SingleWMP, SingleWMPDBMS
from repro.core.workload import make_workloads
from repro.exceptions import InvalidParameterError
from repro.integration.predictors import (
    ConstantMemoryPredictor,
    OracleMemoryPredictor,
    WorkloadMemoryPredictor,
)


class TestOraclePredictor:
    def test_returns_actual_memory(self, tpcc_small):
        workload = make_workloads(tpcc_small.test_records, 10, seed=0)[0]
        oracle = OracleMemoryPredictor()
        assert oracle.predict_workload(workload) == pytest.approx(workload.actual_memory_mb)

    def test_accepts_raw_record_lists(self, tpcc_small):
        records = tpcc_small.test_records[:5]
        expected = sum(record.actual_memory_mb for record in records)
        assert OracleMemoryPredictor().predict_workload(records) == pytest.approx(expected)

    def test_batch_prediction_matches_scalar(self, tpcc_small):
        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)[:4]
        oracle = OracleMemoryPredictor()
        batch = oracle.predict(workloads)
        assert batch == [oracle.predict_workload(w) for w in workloads]


class TestConstantPredictor:
    def test_returns_fixed_value(self, tpcc_small):
        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)[:3]
        predictor = ConstantMemoryPredictor(64.0)
        assert all(predictor.predict_workload(w) == 64.0 for w in workloads)
        assert predictor.predict(workloads) == [64.0, 64.0, 64.0]

    def test_rejects_negative_budget(self):
        with pytest.raises(InvalidParameterError):
            ConstantMemoryPredictor(-1.0)


class TestProtocolCompatibility:
    def test_core_models_satisfy_protocol(self):
        assert isinstance(OracleMemoryPredictor(), WorkloadMemoryPredictor)
        assert isinstance(ConstantMemoryPredictor(1.0), WorkloadMemoryPredictor)
        assert isinstance(SingleWMPDBMS(), WorkloadMemoryPredictor)
        assert isinstance(LearnedWMP(fast=True), WorkloadMemoryPredictor)
        assert isinstance(SingleWMP("ridge", fast=True), WorkloadMemoryPredictor)
