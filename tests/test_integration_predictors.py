"""Tests for the integration predictor protocol and reference predictors."""

import pytest

from repro.core.model import LearnedWMP
from repro.core.single_wmp import SingleWMP, SingleWMPDBMS
from repro.core.workload import make_workloads
from repro.exceptions import InvalidParameterError
from repro.integration.predictors import (
    ConstantMemoryPredictor,
    OracleMemoryPredictor,
    WorkloadMemoryPredictor,
)


class TestOraclePredictor:
    def test_returns_actual_memory(self, tpcc_small):
        workload = make_workloads(tpcc_small.test_records, 10, seed=0)[0]
        oracle = OracleMemoryPredictor()
        assert oracle.predict_workload(workload) == pytest.approx(workload.actual_memory_mb)

    def test_accepts_raw_record_lists(self, tpcc_small):
        records = tpcc_small.test_records[:5]
        expected = sum(record.actual_memory_mb for record in records)
        assert OracleMemoryPredictor().predict_workload(records) == pytest.approx(expected)

    def test_batch_prediction_matches_scalar(self, tpcc_small):
        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)[:4]
        oracle = OracleMemoryPredictor()
        batch = oracle.predict(workloads)
        assert batch == [oracle.predict_workload(w) for w in workloads]


class TestConstantPredictor:
    def test_returns_fixed_value(self, tpcc_small):
        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)[:3]
        predictor = ConstantMemoryPredictor(64.0)
        assert all(predictor.predict_workload(w) == 64.0 for w in workloads)
        assert predictor.predict(workloads) == [64.0, 64.0, 64.0]

    def test_rejects_negative_budget(self):
        with pytest.raises(InvalidParameterError):
            ConstantMemoryPredictor(-1.0)


class TestProtocolCompatibility:
    def test_core_models_satisfy_protocol(self):
        assert isinstance(OracleMemoryPredictor(), WorkloadMemoryPredictor)
        assert isinstance(ConstantMemoryPredictor(1.0), WorkloadMemoryPredictor)
        assert isinstance(SingleWMPDBMS(), WorkloadMemoryPredictor)
        assert isinstance(LearnedWMP(fast=True), WorkloadMemoryPredictor)
        assert isinstance(SingleWMP("ridge", fast=True), WorkloadMemoryPredictor)


class TestBatchPredict:
    """batch_predict prefers vectorized predict but never requires it."""

    def test_uses_vectorized_predict(self, tpcc_small):
        from repro.core.workload import make_workloads
        from repro.integration.predictors import ConstantMemoryPredictor, batch_predict

        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)[:4]
        assert batch_predict(ConstantMemoryPredictor(9.0), workloads) == [9.0] * 4

    def test_empty_input(self):
        from repro.integration.predictors import ConstantMemoryPredictor, batch_predict

        assert batch_predict(ConstantMemoryPredictor(9.0), []) == []

    def test_protocol_only_predictor_uses_loop(self, tpcc_small):
        from repro.core.workload import make_workloads
        from repro.integration.predictors import batch_predict

        class ProtocolOnly:
            def predict_workload(self, queries):
                return 5.0

        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)[:3]
        assert batch_predict(ProtocolOnly(), workloads) == [5.0] * 3

    def test_foreign_predict_falls_back_to_protocol(self, tpcc_small):
        """An sklearn-style predict(X) must not break protocol satisfaction."""
        from repro.core.workload import make_workloads
        from repro.integration.predictors import batch_predict

        class SklearnLike:
            def predict(self, X):
                # Expects a feature matrix, not workloads.
                return X.sum(axis=1)

            def predict_workload(self, queries):
                return 7.0

        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)[:3]
        assert batch_predict(SklearnLike(), workloads) == [7.0] * 3


class TestCachedPredictor:
    def test_caches_repeated_workloads(self, tpcc_small):
        from repro.core.workload import make_workloads
        from repro.integration.predictors import CachedPredictor

        class Counting:
            calls = 0

            def predict_workload(self, queries):
                self.calls += 1
                return 3.0

        inner = Counting()
        cached = CachedPredictor(inner)
        workload = make_workloads(tpcc_small.test_records, 10, seed=0)[0]
        for _ in range(4):
            assert cached.predict_workload(workload) == 3.0
        assert inner.calls == 1
        assert cached.cache_stats().hits == 3

    def test_batch_predict_only_computes_misses(self, tpcc_small):
        from repro.core.workload import make_workloads
        from repro.integration.predictors import CachedPredictor, ConstantMemoryPredictor

        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)[:4]
        cached = CachedPredictor(ConstantMemoryPredictor(2.0))
        cached.predict_workload(workloads[0])
        assert cached.predict(workloads) == [2.0] * 4
        stats = cached.cache_stats()
        assert stats.hits == 1  # workloads[0] was already cached
        cached.clear_cache()
        assert len(cached.predict(workloads)) == 4
