"""Tests for the abstract cost model."""

import pytest

from repro.dbms.plan.cost import CostEstimate, CostModel
from repro.dbms.plan.planner import QueryPlanner


class TestCostEstimate:
    def test_total_and_addition(self):
        a = CostEstimate(io=1.0, cpu=2.0)
        b = CostEstimate(io=0.5, cpu=0.25)
        combined = a + b
        assert combined.total == pytest.approx(3.75)
        assert combined.io == pytest.approx(1.5)


class TestCostModel:
    def test_index_scan_cheaper_for_selective_access(self):
        model = CostModel()
        table_scan = model.scan_cost(1_000_000, 10, via_index=False)
        index_scan = model.scan_cost(1_000_000, 10, via_index=True)
        assert index_scan.total < table_scan.total

    def test_table_scan_cheaper_for_full_access(self):
        model = CostModel()
        table_scan = model.scan_cost(10_000, 10_000, via_index=False)
        index_scan = model.scan_cost(10_000, 10_000, via_index=True)
        assert table_scan.total < index_scan.total

    def test_hash_join_cost_scales_with_build_side(self):
        model = CostModel()
        small_build = model.hash_join_cost(100, 1_000_000)
        large_build = model.hash_join_cost(1_000_000, 100)
        assert small_build.total < large_build.total

    def test_indexed_nested_loop_beats_unindexed_for_large_inner(self):
        model = CostModel()
        indexed = model.nested_loop_cost(1_000, 1_000_000, inner_indexed=True)
        unindexed = model.nested_loop_cost(1_000, 1_000_000, inner_indexed=False)
        assert indexed.total < unindexed.total

    def test_sort_cost_superlinear(self):
        model = CostModel()
        small = model.sort_cost(1_000).total
        large = model.sort_cost(100_000).total
        assert large > 100 * small * 0.9  # n log n growth

    def test_plan_cost_positive_for_real_plan(self, toy_catalog):
        planner = QueryPlanner(toy_catalog)
        plan = planner.plan_sql(
            "select category, sum(amount) from sales s, items i "
            "where s.item_id = i.item_id group by category order by category"
        )
        estimate = CostModel().plan_cost(plan)
        assert estimate.total > 0.0
        assert estimate.io >= 0.0
        assert estimate.cpu > 0.0
