"""Tests for the gradient-boosted tree regressor."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.gbm import GradientBoostingRegressor


class TestGradientBoostingRegressor:
    def test_fits_nonlinear_problem(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostingRegressor(60, learning_rate=0.1, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_more_rounds_reduce_training_error(self, regression_problem):
        X, y = regression_problem
        few = GradientBoostingRegressor(5, random_state=0).fit(X, y)
        many = GradientBoostingRegressor(80, random_state=0).fit(X, y)
        few_err = np.mean((few.predict(X) - y) ** 2)
        many_err = np.mean((many.predict(X) - y) ** 2)
        assert many_err < few_err

    def test_base_score_is_target_mean(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostingRegressor(3, random_state=0).fit(X, y)
        assert model.base_score_ == pytest.approx(float(y.mean()))

    def test_staged_predict_last_stage_matches_predict(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostingRegressor(10, random_state=0).fit(X, y)
        stages = model.staged_predict(X[:25])
        assert stages.shape == (10, 25)
        assert np.allclose(stages[-1], model.predict(X[:25]))

    def test_regularization_shrinks_leaf_weights(self, regression_problem):
        X, y = regression_problem
        loose = GradientBoostingRegressor(20, reg_lambda=0.0, random_state=0).fit(X, y)
        tight = GradientBoostingRegressor(20, reg_lambda=100.0, random_state=0).fit(X, y)
        loose_err = np.mean((loose.predict(X) - y) ** 2)
        tight_err = np.mean((tight.predict(X) - y) ** 2)
        # Heavier regularization fits the training data less aggressively.
        assert tight_err >= loose_err

    def test_subsample_mode_runs(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostingRegressor(15, subsample=0.5, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.5

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            GradientBoostingRegressor(0)
        with pytest.raises(InvalidParameterError):
            GradientBoostingRegressor(10, learning_rate=0.0)
        with pytest.raises(InvalidParameterError):
            GradientBoostingRegressor(10, subsample=1.5)
        with pytest.raises(InvalidParameterError):
            GradientBoostingRegressor(10, max_depth=0)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict([[1.0]])

    def test_node_count_grows_with_rounds(self, regression_problem):
        X, y = regression_problem
        small = GradientBoostingRegressor(5, random_state=0).fit(X, y)
        large = GradientBoostingRegressor(25, random_state=0).fit(X, y)
        assert large.node_count() > small.node_count()

    def test_reproducible_with_seed(self, regression_problem):
        X, y = regression_problem
        a = GradientBoostingRegressor(10, subsample=0.7, random_state=4).fit(X, y)
        b = GradientBoostingRegressor(10, subsample=0.7, random_state=4).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_constant_target(self):
        X = np.arange(30, dtype=float).reshape(-1, 1)
        y = np.full(30, 4.2)
        model = GradientBoostingRegressor(5, random_state=0).fit(X, y)
        assert np.allclose(model.predict(X), 4.2)
