"""Dedicated coverage for the PR 3 deprecation shims.

Contract under test: the old import paths
(``repro.serving.registry.ModelRegistry`` and
``repro.integration.lifecycle.ModelRegistry``) keep working, resolve to the
unified :mod:`repro.registry` subsystem underneath, and emit exactly one
:class:`DeprecationWarning` per process — on first *instantiation*, never on
import, so merely importing a legacy module stays silent.
"""

import importlib
import warnings

import pytest

from repro.integration.predictors import ConstantMemoryPredictor
from repro.registry import ModelRegistry as UnifiedModelRegistry
from repro.registry import ModelVersion


def _capture_deprecations(action):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = action()
    return result, [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestServingRegistryShim:
    def test_importing_the_module_does_not_warn(self):
        import repro.serving.registry as shim_module

        _, deprecations = _capture_deprecations(
            lambda: importlib.reload(shim_module)
        )
        assert deprecations == []

    def test_instantiation_warns_exactly_once_per_process(self):
        from repro.serving.registry import ModelRegistry as ServingShim

        ServingShim._deprecation_warned = False
        _, first = _capture_deprecations(ServingShim)
        _, second = _capture_deprecations(ServingShim)
        assert len(first) == 1
        assert second == []
        assert "repro.registry" in str(first[0].message)

    def test_shim_instances_are_the_unified_class(self):
        from repro.serving.registry import ModelRegistry as ServingShim

        shim = ServingShim()
        assert isinstance(shim, UnifiedModelRegistry)
        assert issubclass(ServingShim, UnifiedModelRegistry)
        # Full unified surface, including the lineage half that used to be
        # exclusive to the lifecycle registry.
        shim.register("m", ConstantMemoryPredictor(1.0), reason="bootstrap")
        assert shim.latest("m").reason == "bootstrap"

    def test_shim_registry_serves_through_a_prediction_server(self, tpcds_small):
        from repro.serving import PredictionServer
        from repro.serving.registry import ModelRegistry as ServingShim

        shim = ServingShim()
        shim.register("m", ConstantMemoryPredictor(12.0))
        # isinstance dispatch in the server treats the shim as a registry,
        # not as a bare predictor to wrap.
        with PredictionServer(shim, model_name="m") as server:
            assert server.registry is shim
            assert server.predict_workload(tpcds_small.test_records[:5]) == 12.0

    def test_package_level_import_is_unified_and_silent(self):
        def resolve():
            from repro.serving import ModelRegistry

            return ModelRegistry

        resolved, deprecations = _capture_deprecations(resolve)
        assert resolved is UnifiedModelRegistry
        assert deprecations == []


class TestLifecycleRegistryShim:
    def test_importing_the_module_does_not_warn(self):
        import repro.integration.lifecycle as lifecycle_module

        _, deprecations = _capture_deprecations(
            lambda: importlib.reload(lifecycle_module)
        )
        assert deprecations == []

    def test_instantiation_warns_exactly_once_per_process(self):
        from repro.integration.lifecycle import ModelRegistry as LifecycleShim

        LifecycleShim._deprecation_warned = False
        _, first = _capture_deprecations(LifecycleShim)
        _, second = _capture_deprecations(LifecycleShim)
        assert len(first) == 1
        assert second == []
        assert "repro.registry" in str(first[0].message)

    def test_shim_is_a_view_over_the_unified_registry(self):
        from repro.integration.lifecycle import ModelRegistry as LifecycleShim

        backing = UnifiedModelRegistry()
        shim = LifecycleShim(registry=backing, name="deployed")
        version = shim.register(
            ConstantMemoryPredictor(1.0),
            n_training_records=10,
            validation_mape=12.5,
            reason="bootstrap",
        )
        assert isinstance(version, ModelVersion)
        # The state lives in the unified registry the shim wraps.
        assert backing.active("deployed") is version.model
        assert backing.latest("deployed").validation_mape == pytest.approx(12.5)
