"""Tests for the gateway wire schemas and the stable error-code mapping."""

import json

import pytest

from repro.api import CachePolicy, PredictionRequest, PredictionResult
from repro.core.workload import Workload, make_workloads
from repro.exceptions import (
    CatalogError,
    DeadlineExceededError,
    InvalidParameterError,
    NotFittedError,
    OverloadedError,
    PlanningError,
    ReproError,
    RequestValidationError,
    SerializationError,
    ServingError,
    SQLSyntaxError,
    UnknownModelError,
    WorkloadError,
)
from repro.serving.http.schemas import (
    STATUS_BY_CODE,
    GatewayHttpError,
    error_from_wire,
    error_to_wire,
    plan_from_wire,
    plan_to_wire,
    request_from_wire,
    request_to_wire,
    result_from_wire,
    result_to_wire,
    status_for_exception,
    workload_from_wire,
    workload_to_wire,
)


@pytest.fixture(scope="module")
def workload(tpcds_small) -> Workload:
    return make_workloads(tpcds_small.test_records, 5, seed=3)[0]


class TestRoundTrips:
    def test_plan_round_trips_through_json(self, workload):
        plan = workload.queries[0].plan
        wire = json.loads(json.dumps(plan_to_wire(plan)))
        rebuilt = plan_from_wire(wire)
        assert plan_to_wire(rebuilt) == plan_to_wire(plan)
        assert rebuilt.op_type is plan.op_type
        assert rebuilt.est_cardinality == plan.est_cardinality

    def test_workload_round_trips_bit_identically(self, workload):
        wire = json.loads(json.dumps(workload_to_wire(workload)))
        rebuilt = workload_from_wire(wire)
        assert len(rebuilt.queries) == len(workload.queries)
        for original, parsed in zip(workload.queries, rebuilt.queries):
            assert parsed.sql == original.sql
            # Bit-identical floats: JSON repr round-trips doubles exactly.
            assert parsed.actual_memory_mb == original.actual_memory_mb
            assert parsed.optimizer_estimate_mb == original.optimizer_estimate_mb
        assert rebuilt.actual_memory_mb == workload.actual_memory_mb

    def test_request_round_trips_with_all_options(self, workload):
        request = PredictionRequest.of(
            workload,
            request_id="wire-1",
            deadline_s=0.25,
            cache_policy=CachePolicy.BYPASS,
        )
        wire = json.loads(json.dumps(request_to_wire(request)))
        parsed = request_from_wire(wire)
        assert parsed.request_id == "wire-1"
        assert parsed.deadline_ms == pytest.approx(250.0)
        assert parsed.cache_policy is CachePolicy.BYPASS
        bound = parsed.bind(0.1)
        assert bound.deadline_s == pytest.approx(0.1)
        assert bound.request_id == "wire-1"

    def test_result_round_trips_with_provenance(self):
        result = PredictionResult(
            memory_mb=123.4567890123,
            request_id="r-9",
            model_name="default",
            model_version=3,
            latency_s=0.0123,
            cache_hit=True,
            feature_cache_active=True,
        )
        wire = json.loads(json.dumps(result_to_wire(result)))
        rebuilt = result_from_wire(wire)
        assert rebuilt == result


class TestStrictValidation:
    def test_unknown_request_field_is_rejected(self, workload):
        wire = request_to_wire(PredictionRequest.of(workload))
        wire["surprise"] = 1
        with pytest.raises(RequestValidationError, match="unknown field"):
            request_from_wire(wire)

    def test_unknown_nested_plan_field_is_rejected(self, workload):
        wire = request_to_wire(PredictionRequest.of(workload))
        wire["workload"]["queries"][0]["plan"]["oops"] = True
        with pytest.raises(RequestValidationError, match="unknown field"):
            request_from_wire(wire)

    def test_missing_required_field_is_rejected(self):
        with pytest.raises(RequestValidationError, match="missing required"):
            request_from_wire({})

    def test_bool_is_not_a_number_on_the_wire(self, workload):
        wire = request_to_wire(PredictionRequest.of(workload))
        wire["workload"]["queries"][0]["actual_memory_mb"] = True
        with pytest.raises(RequestValidationError, match="must be a number"):
            request_from_wire(wire)

    def test_unknown_operator_is_rejected(self, workload):
        wire = request_to_wire(PredictionRequest.of(workload))
        wire["workload"]["queries"][0]["plan"]["op"] = "quantum_join"
        with pytest.raises(RequestValidationError, match="unknown operator"):
            request_from_wire(wire)

    def test_unknown_cache_policy_is_rejected(self, workload):
        wire = request_to_wire(PredictionRequest.of(workload))
        wire["cache_policy"] = "sometimes"
        with pytest.raises(RequestValidationError, match="unknown policy"):
            request_from_wire(wire)

    def test_empty_workload_is_rejected(self):
        with pytest.raises(RequestValidationError, match="not be empty"):
            workload_from_wire({"queries": []})

    def test_result_with_unknown_field_is_rejected(self):
        with pytest.raises(RequestValidationError, match="unknown field"):
            result_from_wire({"memory_mb": 1.0, "request_id": "x", "shiny": 1})


class TestErrorCodes:
    def test_every_repro_exception_carries_a_stable_code(self):
        # The audit: each serving-visible class declares its own code (the
        # wire contract clients switch on), not an inherited catch-all.
        expected = {
            ReproError: "internal",
            NotFittedError: "not_fitted",
            InvalidParameterError: "invalid_parameter",
            SQLSyntaxError: "sql_syntax",
            PlanningError: "planning_failed",
            CatalogError: "unknown_catalog_object",
            WorkloadError: "invalid_workload",
            SerializationError: "serialization_failed",
            ServingError: "serving_error",
            DeadlineExceededError: "deadline_exceeded",
            UnknownModelError: "unknown_model",
            OverloadedError: "overloaded",
            RequestValidationError: "invalid_request",
        }
        for exc_class, code in expected.items():
            assert exc_class.code == code, exc_class

    def test_serving_codes_map_to_documented_statuses(self):
        assert status_for_exception(DeadlineExceededError("late")) == 504
        assert status_for_exception(OverloadedError("full")) == 503
        assert status_for_exception(UnknownModelError("who")) == 404
        assert status_for_exception(RequestValidationError("bad")) == 400
        assert status_for_exception(ServingError("hm")) == 500
        assert status_for_exception(RuntimeError("bug")) == 500

    def test_gateway_http_error_overrides_status(self):
        error = GatewayHttpError("nope", code="not_found", status=404)
        assert status_for_exception(error) == 404
        assert error_to_wire(error)["error"]["code"] == "not_found"

    def test_status_table_is_internally_consistent(self):
        for code, status in STATUS_BY_CODE.items():
            assert 400 <= status <= 599, code

    def test_non_library_errors_do_not_leak_messages(self):
        body = error_to_wire(RuntimeError("secret internal state"))
        assert body["error"]["code"] == "internal"
        assert "secret" not in body["error"]["message"]

    def test_error_round_trips_to_the_same_exception_class(self):
        for exc in (
            DeadlineExceededError("too late"),
            OverloadedError("busy"),
            UnknownModelError("nope"),
            RequestValidationError("bad body"),
        ):
            status = status_for_exception(exc)
            rebuilt = error_from_wire(error_to_wire(exc), status)
            assert type(rebuilt) is type(exc)
            assert "too late" in str(rebuilt) or type(exc) is not DeadlineExceededError

    def test_foreign_error_shapes_degrade_gracefully(self):
        rebuilt = error_from_wire({"weird": "shape"}, 502)
        assert isinstance(rebuilt, ServingError)
        assert "502" in str(rebuilt)
        rebuilt = error_from_wire(None, 500)
        assert isinstance(rebuilt, ServingError)
