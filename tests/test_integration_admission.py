"""Tests for the memory-based admission controller."""

import pytest

from repro.core.workload import Workload, make_workloads
from repro.exceptions import InvalidParameterError
from repro.integration.admission import (
    AdmissionController,
    AdmissionOutcome,
)
from repro.integration.predictors import ConstantMemoryPredictor, OracleMemoryPredictor


def _workloads(tpcc_small, n=12):
    return make_workloads(tpcc_small.test_records, 10, seed=3)[:n]


class TestConstruction:
    def test_rejects_non_positive_pool(self):
        with pytest.raises(InvalidParameterError):
            AdmissionController(ConstantMemoryPredictor(1.0), 0.0)

    def test_rejects_non_positive_safety_factor(self):
        with pytest.raises(InvalidParameterError):
            AdmissionController(ConstantMemoryPredictor(1.0), 10.0, safety_factor=0.0)


class TestSingleDecisions:
    def test_admits_when_it_fits(self):
        controller = AdmissionController(ConstantMemoryPredictor(10.0), 100.0)
        workload = Workload(queries=[], actual_memory_mb=0.0)
        assert controller.admits(workload, in_use_mb=0.0)
        assert controller.admits(workload, in_use_mb=90.0)
        assert not controller.admits(workload, in_use_mb=95.0)

    def test_safety_factor_scales_demand(self):
        controller = AdmissionController(
            ConstantMemoryPredictor(10.0), 100.0, safety_factor=2.0
        )
        workload = Workload(queries=[], actual_memory_mb=0.0)
        assert controller.predicted_demand(workload) == pytest.approx(20.0)
        assert not controller.admits(workload, in_use_mb=85.0)

    def test_negative_in_use_rejected(self):
        controller = AdmissionController(ConstantMemoryPredictor(10.0), 100.0)
        with pytest.raises(InvalidParameterError):
            controller.admits(Workload(queries=[], actual_memory_mb=0.0), in_use_mb=-1.0)


class TestQueueReplay:
    def test_every_workload_eventually_admitted(self, tpcc_small):
        workloads = _workloads(tpcc_small)
        controller = AdmissionController(OracleMemoryPredictor(), memory_pool_mb=80.0)
        report = controller.run(workloads)
        admitted = [
            r.workload_index
            for r in report.records
            if r.outcome is AdmissionOutcome.ADMITTED
        ]
        assert sorted(admitted) == list(range(len(workloads)))

    def test_oracle_never_overcommits(self, tpcc_small):
        workloads = _workloads(tpcc_small)
        pool = 2.0 * max(w.actual_memory_mb for w in workloads)
        controller = AdmissionController(OracleMemoryPredictor(), memory_pool_mb=pool)
        report = controller.run(workloads)
        assert report.overcommitted_rounds == 0
        assert 0.0 < report.mean_utilization <= 1.0

    def test_tiny_pool_runs_one_per_round(self, tpcc_small):
        workloads = _workloads(tpcc_small, n=5)
        controller = AdmissionController(OracleMemoryPredictor(), memory_pool_mb=0.5)
        report = controller.run(workloads)
        # Every workload is oversized relative to the pool, so each runs alone.
        assert report.n_rounds == len(workloads)
        assert all(len(r.admitted) == 1 for r in report.rounds)

    def test_underestimating_predictor_overcommits(self, tpcc_small):
        workloads = _workloads(tpcc_small)
        pool = 1.5 * max(w.actual_memory_mb for w in workloads)
        # A predictor that thinks every batch is free packs everything into
        # one round, which must blow past the pool.
        optimist = ConstantMemoryPredictor(0.0)
        report = AdmissionController(optimist, memory_pool_mb=pool).run(workloads)
        assert report.n_rounds == 1
        assert report.overcommitted_rounds == 1

    def test_summary_keys(self, tpcc_small):
        workloads = _workloads(tpcc_small, n=6)
        report = AdmissionController(OracleMemoryPredictor(), 50.0).run(workloads)
        summary = report.summary()
        assert set(summary) == {
            "rounds",
            "deferrals",
            "overcommitted_rounds",
            "mean_utilization",
        }

    def test_better_predictor_fewer_overcommits(self, tpcc_small):
        """The admission-control value proposition: accuracy buys stability."""
        workloads = _workloads(tpcc_small, n=20)
        pool = 3.0 * float(max(w.actual_memory_mb for w in workloads))
        oracle_report = AdmissionController(OracleMemoryPredictor(), pool).run(workloads)
        optimist_report = AdmissionController(ConstantMemoryPredictor(0.0), pool).run(workloads)
        assert oracle_report.overcommitted_rounds <= optimist_report.overcommitted_rounds
