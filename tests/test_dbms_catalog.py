"""Tests for the catalog: tables, columns, statistics and indexes."""

import pytest

from repro.dbms.catalog import Catalog, Column, Index, Table
from repro.exceptions import CatalogError, InvalidParameterError


class TestColumn:
    def test_defaults(self):
        column = Column("c")
        assert column.dtype == "int"
        assert column.distinct_values == 1000
        assert column.skew == 0.0

    def test_invalid_statistics_rejected(self):
        with pytest.raises(InvalidParameterError):
            Column("c", distinct_values=0)
        with pytest.raises(InvalidParameterError):
            Column("c", width_bytes=0)
        with pytest.raises(InvalidParameterError):
            Column("c", skew=1.5)


class TestTable:
    def test_row_width_sums_columns(self):
        table = Table("t", 100)
        table.add_column(Column("a", width_bytes=8))
        table.add_column(Column("b", width_bytes=16))
        assert table.row_width == 24

    def test_row_width_has_floor(self):
        assert Table("t", 10).row_width == 8

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            Table("t", 10).column("missing")

    def test_negative_row_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            Table("t", -1)


class TestCatalog:
    def test_case_insensitive_lookup(self):
        catalog = Catalog()
        catalog.add_table("Sales", 100, [Column("a")])
        assert catalog.table("SALES").name == "sales"
        assert "sAlEs" in catalog

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table("t", 1)
        with pytest.raises(CatalogError):
            catalog.add_table("T", 2)

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_index_registration_and_lookup(self):
        catalog = Catalog()
        catalog.add_table("t", 100, [Column("a"), Column("b")])
        catalog.add_index(Index("idx_a", "t", ("a",)))
        assert catalog.has_index_on("t", "a")
        assert not catalog.has_index_on("t", "b")
        assert len(catalog.indexes_on("t")) == 1

    def test_index_on_unknown_column_rejected(self):
        catalog = Catalog()
        catalog.add_table("t", 100, [Column("a")])
        with pytest.raises(CatalogError):
            catalog.add_index(Index("idx", "t", ("missing",)))

    def test_multi_column_index_leading_column_semantics(self):
        catalog = Catalog()
        catalog.add_table("t", 100, [Column("a"), Column("b")])
        catalog.add_index(Index("idx_ab", "t", ("a", "b")))
        assert catalog.has_index_on("t", "a")
        assert not catalog.has_index_on("t", "b")

    def test_column_names_aggregated(self):
        catalog = Catalog()
        catalog.add_table("t1", 1, [Column("x")])
        catalog.add_table("t2", 1, [Column("y")])
        assert catalog.column_names() == ["x", "y"]

    def test_len_and_names(self):
        catalog = Catalog()
        catalog.add_table("b", 1)
        catalog.add_table("a", 1)
        assert len(catalog) == 2
        assert catalog.table_names() == ["a", "b"]
