"""Tests for the scenario engine: configs, arrival processes, determinism.

Covers the four scenario layers (parameter streams, arrival processes,
mixes, tenants) plus the integration surface: strict config parsing with
actionable errors, hypothesis properties of the arrival samplers (seeded
determinism, monotonicity, empirical mean rate), bit-identical compilation,
and the end-to-end acceptance check that the same scenario produces the
same per-tenant report counters on both the thread and asyncio backends.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CachePolicy
from repro.exceptions import InvalidParameterError, ScenarioError
from repro.integration.predictors import ConstantMemoryPredictor
from repro.serving import (
    AsyncPredictionServer,
    LoadGenerator,
    PredictionServer,
    ServerConfig,
    ServingTelemetry,
    TelemetryReport,
    TenantReport,
)
from repro.workloads.scenarios import (
    ArrivalSpec,
    ParameterStream,
    ScenarioSpec,
    SourceSpec,
    TenantSpec,
    build_arrivals,
    compile_scenario,
    diurnal_arrivals,
    flash_crowd_arrivals,
    load_scenario,
    onoff_arrivals,
    parse_scenario,
    poisson_arrivals,
    steady_arrivals,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


def small_spec(seed: int = 11) -> ScenarioSpec:
    return ScenarioSpec(
        name="unit",
        seed=seed,
        duration_s=1.0,
        tenants=(
            TenantSpec(
                name="analytics",
                arrival=ArrivalSpec(shape="poisson", qps=40.0),
                mix=(("tpcds", 0.7), ("tpcc", 0.3)),
                deadline_ms=5000.0,
            ),
            TenantSpec(
                name="interactive",
                arrival=ArrivalSpec(shape="steady", qps=20.0),
                mix=(("job", 1.0),),
                cache_policy=CachePolicy.BYPASS,
            ),
        ),
        sources=(
            SourceSpec(benchmark="tpcds", n_queries=60, batch_size=6),
            SourceSpec(benchmark="job", n_queries=40, batch_size=5),
            SourceSpec(benchmark="tpcc", n_queries=40, batch_size=5),
        ),
    )


# -- config parsing --------------------------------------------------------------------


class TestParsing:
    def test_minimal_toml_round_trip(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(
            "[scenario]\n"
            'name = "mini"\n'
            "seed = 3\n"
            "duration_s = 1.5\n"
            "[[tenants]]\n"
            'name = "t"\n'
            "mix = { tpcds = 1.0 }\n"
            "[tenants.arrival]\n"
            'shape = "poisson"\n'
            "qps = 25.0\n"
        )
        spec = load_scenario(path)
        assert spec.name == "mini"
        assert spec.seed == 3
        assert spec.duration_s == 1.5
        assert spec.tenants[0].arrival.shape == "poisson"
        # The tpcds source was defaulted because the mix references it.
        assert spec.benchmarks == ("tpcds",)

    def test_json_config(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(
            '{"scenario": {"name": "j", "seed": 1, "duration_s": 1.0},'
            ' "tenants": [{"name": "t", "mix": {"job": 1.0},'
            ' "arrival": {"shape": "steady", "qps": 10}}]}'
        )
        spec = load_scenario(path)
        assert spec.name == "j"
        assert spec.tenants[0].mix == (("job", 1.0),)

    def test_missing_file_mentions_path(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read scenario file"):
            load_scenario(tmp_path / "absent.toml")

    def test_invalid_toml_is_scenario_error(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text("[scenario\n")
        with pytest.raises(ScenarioError, match="invalid TOML"):
            load_scenario(path)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("scenario:\n")
        with pytest.raises(ScenarioError, match="unsupported scenario format"):
            load_scenario(path)

    def test_scenario_error_is_value_error(self):
        assert issubclass(ScenarioError, ValueError)

    @pytest.mark.parametrize(
        "mutate, message",
        [
            ({"scenario": {"name": "x", "bogus": 1}}, "unknown key"),
            ({"scenario": {"seed": 1}}, "missing required key 'name'"),
            ({"tenants": []}, "at least one tenant"),
            ({}, "missing required"),
        ],
    )
    def test_schema_violations(self, mutate, message):
        base = {
            "scenario": {"name": "x", "seed": 1, "duration_s": 1.0},
            "tenants": [
                {"name": "t", "mix": {"tpcds": 1.0}, "arrival": {"shape": "steady", "qps": 5}}
            ],
        }
        base.update(mutate)
        if not mutate:
            base.pop("tenants")
        with pytest.raises(ScenarioError, match=message):
            parse_scenario(base)

    def test_unknown_benchmark_in_mix(self):
        with pytest.raises(ScenarioError, match="unknown benchmark"):
            TenantSpec(
                name="t",
                arrival=ArrivalSpec(shape="steady", qps=5.0),
                mix=(("oracle12c", 1.0),),
            )

    def test_nonpositive_mix_weight(self):
        with pytest.raises(ScenarioError, match="must be > 0"):
            TenantSpec(
                name="t",
                arrival=ArrivalSpec(shape="steady", qps=5.0),
                mix=(("tpcds", 0.0),),
            )

    def test_unknown_arrival_shape(self):
        with pytest.raises(ScenarioError, match="unknown arrival shape"):
            ArrivalSpec(shape="sawtooth", qps=5.0)

    def test_flash_crowd_requires_spike(self):
        with pytest.raises(ScenarioError, match="peak_qps"):
            ArrivalSpec(shape="flash_crowd", qps=5.0)

    def test_onoff_requires_heavy_tail_gt_one(self):
        with pytest.raises(ScenarioError, match="tail"):
            ArrivalSpec(shape="onoff", qps=5.0, tail=1.0)

    def test_duplicate_tenant_names(self):
        tenant = TenantSpec(
            name="t", arrival=ArrivalSpec(shape="steady", qps=5.0), mix=(("tpcds", 1.0),)
        )
        with pytest.raises(ScenarioError, match="duplicate tenant names"):
            ScenarioSpec(name="x", seed=1, duration_s=1.0, tenants=(tenant, tenant))

    def test_unknown_cache_policy(self):
        payload = {
            "scenario": {"name": "x", "seed": 1, "duration_s": 1.0},
            "tenants": [
                {
                    "name": "t",
                    "mix": {"tpcds": 1.0},
                    "arrival": {"shape": "steady", "qps": 5},
                    "cache_policy": "write-behind",
                }
            ],
        }
        with pytest.raises(ScenarioError, match="unknown policy"):
            parse_scenario(payload)

    @pytest.mark.parametrize("name", ["steady", "diurnal", "flash_crowd", "two_tenant_contention"])
    def test_committed_examples_parse(self, name):
        spec = load_scenario(EXAMPLES / f"{name}.toml")
        assert spec.name == name
        assert spec.tenants


# -- arrival processes -----------------------------------------------------------------


seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestArrivalProcesses:
    def test_steady_grid_is_exact(self):
        assert list(steady_arrivals(10.0, 0.5)) == pytest.approx(
            [0.0, 0.1, 0.2, 0.3, 0.4]
        )

    @given(seed=seeds, qps=st.floats(min_value=50.0, max_value=400.0))
    def test_poisson_deterministic_and_monotone(self, seed, qps):
        first = list(poisson_arrivals(qps, 2.0, seed=seed))
        second = list(poisson_arrivals(qps, 2.0, seed=seed))
        assert first == second
        assert all(0.0 <= t < 2.0 for t in first)
        assert all(b > a for a, b in zip(first, first[1:]))

    @given(seed=seeds, qps=st.floats(min_value=100.0, max_value=400.0))
    def test_poisson_empirical_rate(self, seed, qps):
        # Aim for lambda*T ~ 1000 arrivals so the 6-sigma band is ~±19%.
        duration = 1000.0 / qps
        n = sum(1 for _ in poisson_arrivals(qps, duration, seed=seed))
        assert abs(n - 1000.0) < 6.0 * np.sqrt(1000.0)

    @given(seed=seeds)
    def test_onoff_deterministic_and_monotone(self, seed):
        kwargs = dict(mean_on_s=0.5, mean_off_s=0.5, tail=2.5, seed=seed)
        first = list(onoff_arrivals(200.0, 5.0, **kwargs))
        second = list(onoff_arrivals(200.0, 5.0, **kwargs))
        assert first == second
        assert all(0.0 <= t < 5.0 for t in first)
        assert all(b > a for a, b in zip(first, first[1:]))

    @given(seed=seeds)
    @settings(max_examples=30)
    def test_onoff_empirical_rate(self, seed):
        # Long-run mean rate = qps * on / (on + off).  With tail = 2.5 the
        # period variance is finite; over ~60 cycles the duty cycle noise
        # still dominates, so the band is generous.
        qps, duration = 300.0, 30.0
        n = sum(
            1
            for _ in onoff_arrivals(
                qps, duration, mean_on_s=0.25, mean_off_s=0.25, tail=2.5, seed=seed
            )
        )
        expected = qps * duration * 0.5
        assert 0.55 * expected < n < 1.45 * expected

    @given(seed=seeds)
    def test_diurnal_deterministic_and_monotone(self, seed):
        kwargs = dict(amplitude=0.8, period_s=1.0, seed=seed)
        first = list(diurnal_arrivals(150.0, 2.0, **kwargs))
        assert first == list(diurnal_arrivals(150.0, 2.0, **kwargs))
        assert all(b > a for a, b in zip(first, first[1:]))

    @given(seed=seeds)
    def test_flash_crowd_concentrates_in_spike(self, seed):
        times = list(
            flash_crowd_arrivals(
                10.0,
                3.0,
                peak_qps=1000.0,
                spike_start_s=1.0,
                spike_duration_s=0.5,
                seed=seed,
            )
        )
        assert times == sorted(times)
        in_spike = sum(1 for t in times if 1.0 <= t < 1.5)
        # ~500 expected inside the window vs ~25 outside.
        assert in_spike > len(times) * 0.8

    def test_build_arrivals_dispatches_every_shape(self):
        shapes = [
            ArrivalSpec(shape="steady", qps=10.0),
            ArrivalSpec(shape="poisson", qps=10.0),
            ArrivalSpec(shape="diurnal", qps=10.0, amplitude=0.5, period_s=1.0),
            ArrivalSpec(
                shape="flash_crowd",
                qps=10.0,
                peak_qps=100.0,
                spike_start_s=0.2,
                spike_duration_s=0.2,
            ),
            ArrivalSpec(shape="onoff", qps=10.0, tail=2.0),
        ]
        for spec in shapes:
            times = list(build_arrivals(spec, duration_s=1.0, seed=[3, 4]))
            assert all(0.0 <= t < 1.0 for t in times)


# -- parameter streams -----------------------------------------------------------------


class TestParameterStream:
    def test_per_template_streams_are_isolated(self):
        from repro.workloads.generator import build_benchmark

        generator = build_benchmark("tpcds")
        # Template 2's n-th instantiation must not depend on how many other
        # templates were drawn in between (the dsqgen per-stream property).
        alone = ParameterStream(generator, seed=5)
        interleaved = ParameterStream(generator, seed=5)
        expected = [alone.instantiate(2).sql for _ in range(4)]
        got = []
        for i in range(4):
            interleaved.instantiate(0)
            got.append(interleaved.instantiate(2).sql)
            interleaved.instantiate(1)
        assert got == expected

    def test_take_is_deterministic_and_resumable(self):
        from repro.workloads.generator import build_benchmark

        generator = build_benchmark("job")
        whole = ParameterStream(generator, seed=9).take(20)
        split = ParameterStream(generator, seed=9)
        halves = split.take(10) + split.take(10)
        assert [q.sql for q in whole] == [q.sql for q in halves]
        assert [q.template_id for q in whole] == [q.template_id for q in halves]

    def test_out_of_range_template(self):
        from repro.workloads.generator import build_benchmark

        stream = ParameterStream(build_benchmark("tpcc"), seed=1)
        with pytest.raises(ScenarioError, match="out of range"):
            stream.instantiate(10_000)


# -- compilation -----------------------------------------------------------------------


class TestCompilation:
    def test_same_spec_same_fingerprint(self):
        spec = small_spec()
        first = compile_scenario(spec)
        second = compile_scenario(spec)
        assert first.fingerprint() == second.fingerprint()
        assert [item.at_s for item in first.schedule] == [
            item.at_s for item in second.schedule
        ]

    def test_different_seed_different_fingerprint(self):
        assert (
            compile_scenario(small_spec(seed=11)).fingerprint()
            != compile_scenario(small_spec(seed=12)).fingerprint()
        )

    def test_schedule_is_sorted_and_labelled(self):
        compiled = compile_scenario(small_spec())
        times = [item.at_s for item in compiled.schedule]
        assert times == sorted(times)
        tenants = {item.tenant for item in compiled.schedule}
        assert tenants == {"analytics", "interactive"}
        counts = compiled.tenant_counts()
        assert counts["interactive"] == 20  # steady 20 qps for 1 s
        assert compiled.n_requests == sum(counts.values())

    def test_scheduled_request_binds_tenant_policies(self):
        compiled = compile_scenario(small_spec())
        by_tenant = {item.tenant: item for item in compiled.schedule}
        analytics = by_tenant["analytics"].to_request()
        assert analytics.tenant == "analytics"
        assert analytics.deadline_s == pytest.approx(5.0)
        interactive = by_tenant["interactive"].to_request()
        assert interactive.cache_policy is CachePolicy.BYPASS
        assert interactive.deadline_s is None

    def test_records_cover_all_sources(self):
        compiled = compile_scenario(small_spec())
        benchmarks = {record.benchmark for record in compiled.records}
        assert benchmarks == {"tpcds", "job", "tpcc"}


# -- per-tenant telemetry --------------------------------------------------------------


class TestTenantTelemetry:
    def test_per_tenant_slices(self):
        telemetry = ServingTelemetry()
        telemetry.record(0.010, tenant="a")
        telemetry.record(0.020, cache_hit=True, tenant="a")
        telemetry.record(0.030, tenant="b")
        telemetry.record_error(tenant="b")
        telemetry.record_deadline_miss(shed=True, tenant="a")
        report = telemetry.snapshot()
        assert set(report.tenants) == {"a", "b"}
        assert report.tenants["a"].n_requests == 2
        assert report.tenants["a"].shed_requests == 1
        assert report.tenants["a"].deadline_misses == 1
        assert report.tenants["b"].n_errors == 1
        assert report.tenants["b"].latency_p50_ms == pytest.approx(30.0)

    def test_untenanted_traffic_has_no_tenant_block(self):
        telemetry = ServingTelemetry()
        telemetry.record(0.010)
        assert telemetry.snapshot().tenants == {}

    def test_reset_clears_tenants(self):
        telemetry = ServingTelemetry()
        telemetry.record(0.010, tenant="a")
        telemetry.reset()
        assert telemetry.snapshot().tenants == {}

    def test_report_round_trip_with_tenants(self):
        telemetry = ServingTelemetry()
        telemetry.record(0.010, tenant="a")
        telemetry.record_deadline_miss(tenant="a")
        report = telemetry.snapshot()
        revived = TelemetryReport.from_dict(report.to_dict())
        assert isinstance(revived.tenants["a"], TenantReport)
        assert revived.tenants["a"] == report.tenants["a"]
        assert "tenant a" in report.render()


# -- end-to-end determinism (acceptance) -----------------------------------------------


def run_scenario(compiled, backend: str):
    """Drive one compiled scenario on a fresh tiny server; return the report."""
    server_cls = PredictionServer if backend == "thread" else AsyncPredictionServer
    config = ServerConfig(max_batch_size=16, max_wait_s=0.002)
    with server_cls(ConstantMemoryPredictor(32.0), config=config) as server:
        return LoadGenerator.from_scenario(server, compiled).run()


def counters(report):
    return {
        name: (t.n_requests, t.n_errors, t.deadline_misses, t.shed_requests)
        for name, t in report.tenants.items()
    }


class TestEndToEndDeterminism:
    """Same config + seed twice → identical streams and per-tenant counters.

    Deadlines in ``small_spec`` are generous (or absent), so the counter
    values are wall-clock independent: no misses, no sheds, every scheduled
    request completes — on the thread and the asyncio backend alike.
    """

    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_scenario(small_spec())

    @pytest.mark.parametrize("backend", ["thread", "asyncio"])
    def test_counters_reproducible_per_backend(self, compiled, backend):
        first = run_scenario(compiled, backend)
        second = run_scenario(compiled, backend)
        assert counters(first) == counters(second)
        assert first.n_errors == second.n_errors == 0
        assert first.shed_requests == second.shed_requests == 0

    def test_backends_agree(self, compiled):
        thread = run_scenario(compiled, "thread")
        aio = run_scenario(compiled, "asyncio")
        expected = {
            name: (count, 0, 0, 0) for name, count in compiled.tenant_counts().items()
        }
        assert counters(thread) == expected
        assert counters(aio) == expected

    def test_stream_identical_across_compilations(self):
        spec = small_spec()
        assert (
            compile_scenario(spec).fingerprint() == compile_scenario(spec).fingerprint()
        )

    def test_report_carries_scenario_provenance(self, compiled):
        report = run_scenario(compiled, "thread")
        payload = report.to_dict()
        assert payload["scenario"] == "unit"
        assert payload["seed"] == compiled.seed
        assert set(payload["tenants"]) == {"analytics", "interactive"}
        assert "scenario            : unit" in report.render()


# -- load generator satellites ---------------------------------------------------------


class TestLoadGeneratorKnobs:
    def test_rejects_nonpositive_qps(self, tiny_workload):
        with pytest.raises(InvalidParameterError):
            LoadGenerator(object(), [tiny_workload], qps=0.0)

    def test_rejects_bad_seed(self, tiny_workload):
        with pytest.raises(InvalidParameterError, match="seed"):
            LoadGenerator(object(), [tiny_workload], qps=10.0, seed="7")

    def test_seed_lands_in_report(self, tiny_workload):
        with PredictionServer(
            ConstantMemoryPredictor(8.0), config=ServerConfig(max_wait_s=0.0)
        ) as server:
            report = LoadGenerator(
                server, [tiny_workload] * 5, qps=500.0, benchmark="tpcds", seed=123
            ).run()
        assert report.seed == 123
        assert report.to_dict()["seed"] == 123
        assert "scenario" not in report.to_dict()  # fixed-rate runs are untagged

    def test_from_scenario_rejects_empty_schedule(self):
        spec = small_spec()
        compiled = compile_scenario(spec)
        compiled.schedule = []
        with pytest.raises(InvalidParameterError, match="zero requests"):
            LoadGenerator.from_scenario(object(), compiled)


@pytest.fixture(scope="module")
def tiny_workload(tpcds_small):
    from repro.core.workload import make_workloads

    return make_workloads(tpcds_small.test_records[:10], 5, seed=0)[0]


# -- wire schema -----------------------------------------------------------------------


class TestTenantOnTheWire:
    def test_request_round_trip_keeps_tenant(self, tiny_workload):
        from repro.api import PredictionRequest
        from repro.serving.http.schemas import request_from_wire, request_to_wire

        request = PredictionRequest.of(
            tiny_workload, deadline_s=0.25, tenant="analytics"
        )
        parsed = request_from_wire(request_to_wire(request))
        assert parsed.tenant == "analytics"
        bound = parsed.bind(0.25)
        assert bound.tenant == "analytics"

    def test_absent_tenant_stays_none(self, tiny_workload):
        from repro.api import PredictionRequest
        from repro.serving.http.schemas import request_from_wire, request_to_wire

        wire = request_to_wire(PredictionRequest.of(tiny_workload))
        assert "tenant" not in wire
        assert request_from_wire(wire).tenant is None

    def test_empty_tenant_rejected(self, tiny_workload):
        from repro.api import PredictionRequest
        from repro.exceptions import RequestValidationError
        from repro.serving.http.schemas import request_from_wire, request_to_wire

        wire = request_to_wire(PredictionRequest.of(tiny_workload))
        wire["tenant"] = ""
        with pytest.raises(RequestValidationError, match="tenant"):
            request_from_wire(wire)
