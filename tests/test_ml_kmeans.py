"""Tests for k-means clustering and the elbow method."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.kmeans import KMeans, elbow_method


class TestKMeans:
    def test_recovers_separated_blobs(self, blobs):
        X, truth = blobs
        model = KMeans(n_clusters=3, random_state=0).fit(X)
        labels = model.labels_
        # Each true blob must map to a single distinct predicted cluster.
        mapping = {}
        for true_label in np.unique(truth):
            values, counts = np.unique(labels[truth == true_label], return_counts=True)
            dominant = values[np.argmax(counts)]
            assert counts.max() == np.sum(truth == true_label)
            mapping[true_label] = dominant
        assert len(set(mapping.values())) == 3

    def test_inertia_decreases_with_more_clusters(self, blobs):
        X, _ = blobs
        inertia_2 = KMeans(n_clusters=2, random_state=0).fit(X).inertia_
        inertia_6 = KMeans(n_clusters=6, random_state=0).fit(X).inertia_
        assert inertia_6 < inertia_2

    def test_predict_matches_fit_labels(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=3, random_state=1).fit(X)
        assert np.array_equal(model.predict(X), model.labels_)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict([[1.0, 2.0]])

    def test_too_few_samples_raises(self):
        with pytest.raises(InvalidParameterError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_invalid_k_raises(self):
        with pytest.raises(InvalidParameterError):
            KMeans(n_clusters=0)

    def test_reproducible_with_seed(self, blobs):
        X, _ = blobs
        a = KMeans(n_clusters=3, random_state=42).fit(X)
        b = KMeans(n_clusters=3, random_state=42).fit(X)
        assert np.array_equal(a.labels_, b.labels_)
        assert np.allclose(a.cluster_centers_, b.cluster_centers_)

    def test_transform_shape_and_nonnegativity(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=3, random_state=0).fit(X)
        distances = model.transform(X[:10])
        assert distances.shape == (10, 3)
        assert np.all(distances >= 0.0)

    def test_single_cluster(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=1, random_state=0).fit(X)
        assert np.allclose(model.cluster_centers_[0], X.mean(axis=0))

    def test_duplicate_points_handled(self):
        X = np.tile(np.array([[1.0, 1.0]]), (20, 1))
        model = KMeans(n_clusters=3, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)

    def test_fit_predict_equivalent(self, blobs):
        X, _ = blobs
        labels = KMeans(n_clusters=3, random_state=5).fit_predict(X)
        assert labels.shape == (X.shape[0],)
        assert set(np.unique(labels)) <= {0, 1, 2}


class TestElbowMethod:
    def test_finds_true_cluster_count_region(self, blobs):
        X, _ = blobs
        best_k, profile = elbow_method(X, [1, 2, 3, 4, 5, 6, 8], random_state=0)
        assert 2 <= best_k <= 4
        assert set(profile) == {1, 2, 3, 4, 5, 6, 8}

    def test_profile_monotone_decreasing(self, blobs):
        X, _ = blobs
        _, profile = elbow_method(X, [1, 2, 3, 5, 8], random_state=0)
        values = [profile[k] for k in sorted(profile)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_empty_candidates_rejected(self, blobs):
        X, _ = blobs
        with pytest.raises(InvalidParameterError):
            elbow_method(X, [])

    def test_candidates_above_sample_count_skipped(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [10.0, 10.0]])
        best_k, profile = elbow_method(X, [2, 50], random_state=0)
        assert best_k == 2
        assert 50 not in profile
