"""Tests for the evaluation metrics (RMSE, MAPE, IQR, residual summaries)."""

import numpy as np
import pytest

from repro.core.metrics import (
    interquartile_range,
    mape,
    mean_absolute_error,
    residuals,
    rmse,
    summarize_residuals,
)
from repro.exceptions import InvalidParameterError


class TestRmse:
    def test_zero_for_perfect_predictions(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_scale_sensitivity(self):
        small = rmse([100.0], [101.0])
        large = rmse([100.0], [110.0])
        assert large == pytest.approx(10 * small)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            rmse([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            rmse([], [])


class TestMape:
    def test_known_value(self):
        assert mape([100.0, 200.0], [110.0, 180.0]) == pytest.approx(10.0)

    def test_zero_targets_excluded(self):
        assert mape([0.0, 100.0], [5.0, 110.0]) == pytest.approx(10.0)

    def test_all_zero_targets_rejected(self):
        with pytest.raises(InvalidParameterError):
            mape([0.0, 0.0], [1.0, 2.0])

    def test_scale_invariance(self):
        assert mape([10.0], [11.0]) == pytest.approx(mape([1000.0], [1100.0]))


class TestMae:
    def test_known_value(self):
        assert mean_absolute_error([1.0, 3.0], [2.0, 1.0]) == pytest.approx(1.5)


class TestResiduals:
    def test_sign_convention(self):
        # Positive residual means the model under-estimated.
        errors = residuals([10.0], [7.0])
        assert errors[0] == pytest.approx(3.0)


class TestIqr:
    def test_known_value(self):
        values = np.arange(1, 101, dtype=float)
        assert interquartile_range(values) == pytest.approx(49.5)

    def test_constant_sample_zero(self):
        assert interquartile_range([5.0, 5.0, 5.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            interquartile_range([])


class TestSummarizeResiduals:
    def test_fields_consistent(self, rng):
        actual = rng.uniform(50, 150, size=500)
        predicted = actual + rng.normal(0, 5, size=500)
        summary = summarize_residuals(actual, predicted)
        assert summary.q1 <= summary.median <= summary.q3
        assert summary.iqr == pytest.approx(summary.q3 - summary.q1)
        assert summary.minimum <= summary.q1
        assert summary.maximum >= summary.q3
        assert 0.0 <= summary.skew_share_under <= 1.0

    def test_unbiased_predictions_are_balanced(self, rng):
        actual = rng.uniform(50, 150, size=2000)
        predicted = actual + rng.normal(0, 10, size=2000)
        summary = summarize_residuals(actual, predicted)
        assert summary.is_balanced(tolerance=0.1)
        assert abs(summary.median) < 2.0

    def test_systematic_underestimation_detected(self):
        actual = np.full(100, 100.0)
        predicted = np.full(100, 60.0)  # always too low
        summary = summarize_residuals(actual, predicted)
        assert summary.skew_share_under == 1.0
        assert not summary.is_balanced()
        assert summary.median == pytest.approx(40.0)
