"""Tests for the experiment harness (config, reporting, suite, figures).

These use a deliberately tiny configuration so the full paths execute in
seconds; the benchmark harness runs the realistic sizes.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.figures import figure4_rmse, figure5_residuals, figure8_model_size
from repro.experiments.reporting import format_figure, format_table
from repro.experiments.suite import run_model_suite


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        query_counts={"tpcds": 400, "job": 300, "tpcc": 300},
        template_counts={"tpcds": 12, "job": 10, "tpcc": 8},
        batch_size=10,
        seed=11,
        fast_models=True,
    )


@pytest.fixture(scope="module")
def tpcc_suite(tiny_config):
    return run_model_suite("tpcc", config=tiny_config, regressors=("ridge", "dt"))


class TestConfig:
    def test_default_config_counts(self):
        config = default_config()
        assert config.n_queries("job") == 2300
        assert config.n_templates("tpcds") == 100
        assert config.batch_size == 10

    def test_query_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_SCALE", "0.1")
        config = default_config()
        assert config.n_queries("tpcds") == 600

    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        config = default_config()
        assert config.n_queries("tpcds") == 93_000
        assert not config.fast_models


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"model": "LearnedWMP-XGB", "rmse": 12.3456}, {"model": "DBMS", "rmse": 1868.0}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("model")
        assert "LearnedWMP-XGB" in lines[2]
        assert "1,868" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_figure_title(self):
        text = format_figure("Figure 4: RMSE", [{"a": 1}])
        assert text.startswith("== Figure 4: RMSE ==")

    def test_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestModelSuite:
    def test_suite_contains_all_model_variants(self, tpcc_suite):
        labels = {result.label for result in tpcc_suite.results}
        assert "SingleWMP-DBMS" in labels
        assert "LearnedWMP-RIDGE" in labels
        assert "SingleWMP-DT" in labels
        assert len(tpcc_suite.results) == 1 + 2 * 2

    def test_metrics_populated(self, tpcc_suite):
        for result in tpcc_suite.results:
            assert result.rmse >= 0.0
            assert result.mape >= 0.0
            assert result.inference_time_us > 0.0
            if result.approach != "SingleWMP-DBMS":
                assert result.training_time_ms > 0.0
                assert result.model_size_kb > 0.0

    def test_ml_models_beat_dbms_heuristic_on_tpcc(self, tpcc_suite):
        dbms_rmse = tpcc_suite.dbms().rmse
        for result in tpcc_suite.learned():
            assert result.rmse < dbms_rmse

    def test_lookup_helpers(self, tpcc_suite):
        assert len(tpcc_suite.learned()) == 2
        assert len(tpcc_suite.single_ml()) == 2
        assert tpcc_suite.by_label()["SingleWMP-DBMS"].regressor == "heuristic"


class TestFigures:
    def test_figure4_rows(self, tiny_config, tpcc_suite):
        figure = figure4_rmse(tiny_config, suites={"tpcc": tpcc_suite})
        assert len(figure.rows) == len(tpcc_suite.results)
        assert {"benchmark", "model", "rmse_mb", "mape_pct"} <= set(figure.rows[0])
        assert "Figure 4" in figure.render()

    def test_figure5_rows_have_quartiles(self, tiny_config, tpcc_suite):
        figure = figure5_residuals(tiny_config, suites={"tpcc": tpcc_suite})
        row = figure.rows[0]
        assert row["q1"] <= row["q3"]
        assert row["iqr"] == pytest.approx(row["q3"] - row["q1"])

    def test_figure8_excludes_heuristic(self, tiny_config, tpcc_suite):
        figure = figure8_model_size(tiny_config, suites={"tpcc": tpcc_suite})
        assert all(row["model"] != "SingleWMP-DBMS" for row in figure.rows)
        assert all(np.isfinite(row["model_size_kb"]) for row in figure.rows)
