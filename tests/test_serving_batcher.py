"""Tests for the micro-batcher (flush-on-size, flush-on-deadline, errors,
per-request deadlines: shedding, EDF ordering, wait clamping)."""

import threading
import time

import pytest

from repro.core.workload import Workload
from repro.exceptions import DeadlineExceededError, InvalidParameterError, ServingError
from repro.serving.batcher import MicroBatcher


def make_workload(value: float = 0.0) -> Workload:
    return Workload(queries=[], actual_memory_mb=value)


class RecordingPredictor:
    """Counts calls and batch sizes; returns each workload's label."""

    def __init__(self, delay_s: float = 0.0) -> None:
        self.batches: list[int] = []
        self.delay_s = delay_s
        self._lock = threading.Lock()

    def __call__(self, workloads):
        if self.delay_s:
            time.sleep(self.delay_s)
        with self._lock:
            self.batches.append(len(workloads))
        return [float(w.actual_memory_mb or 0.0) for w in workloads]


class TestFlushOnSize:
    def test_full_batch_flushes_without_waiting(self):
        predictor = RecordingPredictor()
        # A wait long enough that only a size flush can explain fast results.
        with MicroBatcher(predictor, max_batch_size=4, max_wait_s=30.0) as batcher:
            futures = [batcher.submit(make_workload(i)) for i in range(4)]
            results = [f.result(timeout=5.0) for f in futures]
        assert results == [0.0, 1.0, 2.0, 3.0]
        assert predictor.batches == [4]
        assert batcher.stats().size_flushes == 1

    def test_oversubmission_splits_into_size_batches(self):
        predictor = RecordingPredictor(delay_s=0.02)
        with MicroBatcher(predictor, max_batch_size=3, max_wait_s=30.0) as batcher:
            futures = [batcher.submit(make_workload(i)) for i in range(9)]
            assert [f.result(timeout=5.0) for f in futures] == [float(i) for i in range(9)]
        assert predictor.batches == [3, 3, 3]


class TestFlushOnDeadline:
    def test_single_request_flushes_at_deadline(self):
        predictor = RecordingPredictor()
        with MicroBatcher(predictor, max_batch_size=1000, max_wait_s=0.01) as batcher:
            start = time.monotonic()
            result = batcher.submit(make_workload(7.0)).result(timeout=5.0)
            elapsed = time.monotonic() - start
        assert result == 7.0
        assert elapsed < 2.0  # released by the deadline, not by batch size
        assert predictor.batches == [1]
        assert batcher.stats().deadline_flushes >= 1

    def test_zero_wait_serves_immediately(self):
        predictor = RecordingPredictor()
        with MicroBatcher(predictor, max_batch_size=1000, max_wait_s=0.0) as batcher:
            assert batcher.submit(make_workload(3.0)).result(timeout=5.0) == 3.0


class TestErrorsAndLifecycle:
    def test_failing_predictor_fails_every_future(self):
        def explode(workloads):
            raise RuntimeError("model fell over")

        with MicroBatcher(explode, max_batch_size=2, max_wait_s=0.005) as batcher:
            futures = [batcher.submit(make_workload()) for _ in range(2)]
            for future in futures:
                with pytest.raises(RuntimeError, match="model fell over"):
                    future.result(timeout=5.0)

    def test_wrong_prediction_count_raises_serving_error(self):
        with MicroBatcher(lambda ws: [1.0, 2.0, 3.0], max_batch_size=1, max_wait_s=0.0) as batcher:
            with pytest.raises(ServingError):
                batcher.submit(make_workload()).result(timeout=5.0)

    def test_close_drains_pending_requests(self):
        predictor = RecordingPredictor(delay_s=0.01)
        batcher = MicroBatcher(predictor, max_batch_size=100, max_wait_s=30.0)
        futures = [batcher.submit(make_workload(i)) for i in range(5)]
        batcher.close()
        assert [f.result(timeout=1.0) for f in futures] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda ws: [0.0] * len(ws))
        batcher.close()
        with pytest.raises(ServingError):
            batcher.submit(make_workload())

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda ws: [0.0] * len(ws))
        batcher.close()
        batcher.close()

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            MicroBatcher(lambda ws: [], max_batch_size=0)
        with pytest.raises(InvalidParameterError):
            MicroBatcher(lambda ws: [], max_wait_s=-1.0)

    def test_stats_accumulate(self):
        predictor = RecordingPredictor()
        with MicroBatcher(predictor, max_batch_size=2, max_wait_s=0.005) as batcher:
            futures = [batcher.submit(make_workload(i)) for i in range(4)]
            [f.result(timeout=5.0) for f in futures]
            stats = batcher.stats()
        assert stats.requests == 4
        assert stats.batches >= 2
        assert stats.mean_batch_size <= 2.0
        assert stats.max_batch_size_seen <= 2


class BlockingPredictor:
    """Holds the worker inside a batch until released; records batch labels."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.started = threading.Event()
        self.batches: list[list[float]] = []
        self._lock = threading.Lock()

    def __call__(self, workloads):
        self.started.set()
        assert self.release.wait(timeout=5.0)
        with self._lock:
            self.batches.append([float(w.actual_memory_mb or 0.0) for w in workloads])
        return [float(w.actual_memory_mb or 0.0) for w in workloads]


class TestDeadlines:
    def test_expired_item_is_shed_never_executed(self):
        predictor = BlockingPredictor()
        with MicroBatcher(predictor, max_batch_size=1, max_wait_s=0.0) as batcher:
            blocker = batcher.submit(make_workload(1.0))
            assert predictor.started.wait(timeout=5.0)
            # Enqueued behind the executing batch with an already-spent budget.
            doomed = batcher.submit(make_workload(2.0), deadline_at=time.monotonic() - 1.0)
            predictor.release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5.0)
            assert blocker.result(timeout=5.0) == 1.0
            stats = batcher.stats()
        assert stats.shed_requests == 1
        # The expired item never occupied a batch slot.
        assert [2.0] not in predictor.batches and all(2.0 not in b for b in predictor.batches)

    def test_near_expiring_items_are_taken_edf_first(self):
        predictor = BlockingPredictor()
        with MicroBatcher(predictor, max_batch_size=2, max_wait_s=30.0) as batcher:
            # Two deadline-free items size-flush immediately and hold the
            # worker inside the model call.
            blockers = [batcher.submit(make_workload(0.0)), batcher.submit(make_workload(0.5))]
            assert predictor.started.wait(timeout=5.0)
            now = time.monotonic()
            loose = batcher.submit(make_workload(1.0), deadline_at=now + 30.0)
            tight = batcher.submit(make_workload(2.0), deadline_at=now + 10.0)
            medium = batcher.submit(make_workload(3.0), deadline_at=now + 20.0)
            predictor.release.set()
            for future in (*blockers, loose, tight, medium):
                future.result(timeout=5.0)
        # The next batch after the blockers was cut earliest-deadline-first:
        # tight and medium ride it, loose takes the one after.
        assert predictor.batches[0] == [0.0, 0.5]
        assert predictor.batches[1] == [2.0, 3.0]
        assert predictor.batches[2] == [1.0]

    def test_wait_clamped_to_tightest_member_deadline(self):
        predictor = RecordingPredictor()
        # The coalescing window alone would hold the request for 30 s; a
        # deadline inside the window must flush (not shed) it immediately.
        with MicroBatcher(predictor, max_batch_size=1000, max_wait_s=30.0) as batcher:
            start = time.monotonic()
            future = batcher.submit(make_workload(7.0), deadline_at=start + 5.0)
            assert future.result(timeout=5.0) == 7.0
            assert time.monotonic() - start < 4.0
            stats = batcher.stats()
        assert stats.shed_requests == 0
        assert stats.deadline_flushes >= 1

    def test_deadline_free_items_are_unaffected(self):
        predictor = RecordingPredictor()
        with MicroBatcher(predictor, max_batch_size=4, max_wait_s=0.005) as batcher:
            futures = [batcher.submit(make_workload(i)) for i in range(4)]
            assert [f.result(timeout=5.0) for f in futures] == [0.0, 1.0, 2.0, 3.0]
            assert batcher.stats().shed_requests == 0
