"""Tests for the ``learnedwmp`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.model import LearnedWMP
from repro.core.serialization import load_model


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "not-a-benchmark"])

    def test_train_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "tpcc"])


class TestGenerate:
    def test_writes_json_summary(self, tmp_path, capsys):
        output = tmp_path / "log.json"
        exit_code = main(
            ["generate", "tpcc", "--queries", "120", "--seed", "3", "--output", str(output)]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert len(payload) == 120
        assert {"sql", "actual_memory_mb", "optimizer_estimate_mb", "partition"} <= set(
            payload[0]
        )
        partitions = {record["partition"] for record in payload}
        assert partitions == {"train", "test"}

    def test_prints_to_stdout_without_output(self, capsys):
        exit_code = main(["generate", "tpcc", "--queries", "40", "--seed", "3"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert len(json.loads(captured)) == 40


class TestTrainAndEvaluate:
    def test_round_trip(self, tmp_path, capsys):
        model_path = tmp_path / "model.pkl"
        exit_code = main(
            [
                "train",
                "tpcc",
                "--queries",
                "400",
                "--regressor",
                "xgb",
                "--templates",
                "12",
                "--seed",
                "5",
                "--fast",
                "--output",
                str(model_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "holdout RMSE" in out
        assert model_path.exists()
        assert isinstance(load_model(model_path), LearnedWMP)

        exit_code = main(
            [
                "evaluate",
                str(model_path),
                "tpcc",
                "--queries",
                "200",
                "--seed",
                "11",
                "--compare-dbms",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "MAPE" in out
        assert "DBMS heuristic RMSE" in out


class TestServeAndLoadtest:
    def test_serve_replays_traffic_and_prints_telemetry(self, capsys):
        exit_code = main(
            [
                "serve",
                "--benchmark",
                "tpcc",
                "--queries",
                "200",
                "--requests",
                "40",
                "--qps",
                "500",
                "--seed",
                "3",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "cache hit rate" in out

    def test_loadtest_reports_and_writes_json(self, tmp_path, capsys):
        output = tmp_path / "BENCH_serving.json"
        exit_code = main(
            [
                "loadtest",
                "--benchmark",
                "tpcc",
                "--queries",
                "200",
                "--requests",
                "60",
                "--qps",
                "400",
                "--seed",
                "3",
                "--compare-naive",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "latency p99" in out
        assert "naive loop" in out
        payload = json.loads(output.read_text())
        assert payload["n_requests"] == 60
        assert payload["n_errors"] == 0
        assert "cache_hit_rate" in payload and "naive_qps" in payload

    @pytest.mark.parametrize("backend", ["thread", "asyncio"])
    def test_loadtest_backends_with_sharded_registry(self, backend, tmp_path, capsys):
        output = tmp_path / "bench.json"
        exit_code = main(
            [
                "loadtest",
                "--benchmark",
                "tpcc",
                "--queries",
                "200",
                "--requests",
                "40",
                "--qps",
                "400",
                "--seed",
                "3",
                "--backend",
                backend,
                "--shards",
                "2",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert f"backend={backend}, shards=2" in out
        # The existing parity check ran against the sharded front: served
        # decisions must match the direct model exactly.
        assert "parity" in out
        payload = json.loads(output.read_text())
        assert payload["backend"] == backend
        assert payload["shards"] == 2
        assert payload["n_errors"] == 0
        assert payload["parity_max_delta_mb"] == pytest.approx(0.0, abs=1e-9)

    def test_serve_asyncio_backend(self, capsys):
        exit_code = main(
            [
                "serve",
                "--benchmark",
                "tpcc",
                "--queries",
                "200",
                "--requests",
                "30",
                "--qps",
                "500",
                "--seed",
                "3",
                "--backend",
                "asyncio",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "backend=asyncio" in out
        assert "throughput" in out

    def test_loadtest_with_deadline_reports_misses(self, tmp_path, capsys):
        output = tmp_path / "bench_deadline.json"
        exit_code = main(
            [
                "loadtest",
                "--benchmark",
                "tpcc",
                "--queries",
                "200",
                "--requests",
                "40",
                "--qps",
                "400",
                "--seed",
                "3",
                "--deadline-ms",
                "2000",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text())
        # The report always carries the deadline counters; with a generous
        # 2 s budget on tiny traffic nothing should have been shed.
        assert payload["deadline_ms"] == 2000
        assert payload["shed_requests"] == 0
        assert "deadline_misses" in payload

    def test_rejects_bad_shard_count(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "loadtest",
                    "--benchmark",
                    "tpcc",
                    "--queries",
                    "120",
                    "--requests",
                    "10",
                    "--shards",
                    "0",
                ]
            )

    def test_loadtest_with_saved_model(self, tmp_path, capsys):
        model_path = tmp_path / "model.pkl"
        main(
            [
                "train",
                "tpcc",
                "--queries",
                "300",
                "--regressor",
                "ridge",
                "--templates",
                "8",
                "--seed",
                "5",
                "--fast",
                "--output",
                str(model_path),
            ]
        )
        capsys.readouterr()
        exit_code = main(
            [
                "loadtest",
                "--benchmark",
                "tpcc",
                "--model",
                str(model_path),
                "--queries",
                "200",
                "--requests",
                "30",
                "--qps",
                "300",
                "--seed",
                "5",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "loaded model" in out
        assert "throughput" in out


class TestLoadtestScenario:
    def test_missing_file_exits_2_with_one_line_error(self, capsys):
        exit_code = main(["loadtest", "--scenario", "/nonexistent/traffic.toml"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "cannot read scenario file" in err
        # One actionable line on stderr, no traceback.
        assert err.strip().count("\n") == 0
        assert "Traceback" not in err

    def test_invalid_config_exits_2_with_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text('[scenario]\nname = "broken"\nduration_s = 1.0\n')
        exit_code = main(["loadtest", "--scenario", str(path)])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "tenants" in err
        assert err.strip().count("\n") == 0
        assert "Traceback" not in err

    def test_scenario_run_writes_sectioned_json(self, tmp_path, capsys):
        path = tmp_path / "mini.toml"
        path.write_text(
            "[scenario]\n"
            'name = "mini"\n'
            "seed = 5\n"
            "duration_s = 0.5\n"
            "[sources.tpcc]\n"
            "n_queries = 40\n"
            "batch_size = 5\n"
            "[[tenants]]\n"
            'name = "solo"\n'
            "mix = { tpcc = 1.0 }\n"
            "deadline_ms = 2000.0\n"
            "[tenants.arrival]\n"
            'shape = "steady"\n'
            "qps = 20.0\n"
        )
        output = tmp_path / "bench.json"
        exit_code = main(
            [
                "loadtest",
                "--scenario",
                str(path),
                "--output",
                str(output),
                "--section",
                "scenario_mini",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "scenario 'mini' (seed 5)" in out
        assert "tenant solo" in out
        payload = json.loads(output.read_text())["scenario_mini"]
        assert payload["scenario"] == "mini"
        assert payload["seed"] == 5
        assert payload["n_requests"] == 10  # steady 20 qps for 0.5 s
        assert payload["tenants"]["solo"]["n_requests"] == 10
        assert payload["tenants"]["solo"]["deadline_misses"] == 0


class TestFigures:
    def test_lists_available_figures(self, capsys):
        exit_code = main(["figures"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "figure4" in out and "figure11" in out

    def test_rejects_unknown_figure(self, capsys):
        exit_code = main(["figures", "figure99"])
        assert exit_code == 2
        assert "unknown figures" in capsys.readouterr().err
