"""Repository hygiene: no build artifacts tracked in git.

Compiled bytecode (``__pycache__``/``*.pyc``) is interpreter- and
machine-specific; committing it bloats diffs and goes stale the moment the
source changes.  The files are ignored by ``.gitignore``, but ignore rules
do not untrack files that were already committed — this test is the
backstop that keeps them out for good.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    git = shutil.which("git")
    if git is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not running inside a git checkout")
    result = subprocess.run(
        [git, "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )
    if result.returncode != 0:
        pytest.skip(f"git ls-files failed: {result.stderr.strip()}")
    return result.stdout.splitlines()


def test_no_bytecode_is_tracked():
    offenders = [
        path
        for path in _tracked_files()
        if "__pycache__/" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert offenders == [], (
        f"{len(offenders)} compiled-bytecode file(s) are tracked in git "
        f"(e.g. {offenders[:3]}); run `git rm -r --cached <path>` — "
        f".gitignore already excludes them"
    )


def test_gitignore_excludes_bytecode():
    rules = (REPO_ROOT / ".gitignore").read_text().splitlines()
    assert "__pycache__/" in rules
    assert "*.pyc" in rules
