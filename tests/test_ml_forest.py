"""Tests for the random-forest regressor."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor


class TestRandomForestRegressor:
    def test_fits_nonlinear_problem(self, regression_problem):
        X, y = regression_problem
        model = RandomForestRegressor(n_estimators=15, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.75

    def test_ensemble_size(self, regression_problem):
        X, y = regression_problem
        model = RandomForestRegressor(n_estimators=7, random_state=0).fit(X, y)
        assert len(model.estimators_) == 7

    def test_prediction_is_average_of_trees(self, regression_problem):
        X, y = regression_problem
        model = RandomForestRegressor(n_estimators=5, random_state=1).fit(X, y)
        per_tree = np.vstack([tree.predict(X[:10]) for tree in model.estimators_])
        assert np.allclose(model.predict(X[:10]), per_tree.mean(axis=0))

    def test_smoother_than_single_tree_on_holdout(self, rng):
        X = rng.uniform(-3, 3, size=(300, 3))
        y = np.sin(X[:, 0]) * 3 + X[:, 1] ** 2 + rng.normal(0, 0.4, 300)
        X_test = rng.uniform(-3, 3, size=(150, 3))
        y_test = np.sin(X_test[:, 0]) * 3 + X_test[:, 1] ** 2
        tree = DecisionTreeRegressor(random_state=0).fit(X, y)
        forest = RandomForestRegressor(
            n_estimators=25, max_features=None, random_state=0
        ).fit(X, y)
        tree_err = np.mean((tree.predict(X_test) - y_test) ** 2)
        forest_err = np.mean((forest.predict(X_test) - y_test) ** 2)
        assert forest_err < tree_err

    def test_no_bootstrap_mode(self, regression_problem):
        X, y = regression_problem
        model = RandomForestRegressor(
            n_estimators=3, bootstrap=False, max_features=None, random_state=0
        ).fit(X, y)
        # Without bootstrapping or feature sampling all trees are identical.
        first = model.estimators_[0].predict(X[:20])
        for tree in model.estimators_[1:]:
            assert np.allclose(tree.predict(X[:20]), first)

    def test_invalid_n_estimators(self):
        with pytest.raises(InvalidParameterError):
            RandomForestRegressor(n_estimators=0)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict([[0.0]])

    def test_node_count_positive(self, regression_problem):
        X, y = regression_problem
        model = RandomForestRegressor(n_estimators=4, random_state=0).fit(X, y)
        assert model.node_count() >= 4

    def test_reproducible_with_seed(self, regression_problem):
        X, y = regression_problem
        a = RandomForestRegressor(n_estimators=5, random_state=9).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, random_state=9).fit(X, y).predict(X)
        assert np.allclose(a, b)
