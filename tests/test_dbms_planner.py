"""Tests for the rule-based query planner."""

import pytest

from repro.dbms.plan.operators import OperatorType
from repro.dbms.plan.planner import QueryPlanner
from repro.exceptions import PlanningError


@pytest.fixture()
def planner(toy_catalog):
    return QueryPlanner(toy_catalog)


class TestAccessPaths:
    def test_unselective_query_uses_table_scan(self, planner):
        plan = planner.plan_sql("select amount from sales where quantity > 5")
        assert plan.count_operator(OperatorType.TBSCAN) == 1
        assert plan.count_operator(OperatorType.IXSCAN) == 0

    def test_selective_indexed_equality_uses_index(self, planner):
        plan = planner.plan_sql("select price from items where item_id = 42")
        assert plan.count_operator(OperatorType.IXSCAN) == 1
        assert plan.count_operator(OperatorType.FETCH) == 1

    def test_unindexed_column_stays_table_scan(self, planner):
        plan = planner.plan_sql("select item_id from items where category = 'Books'")
        assert plan.count_operator(OperatorType.IXSCAN) == 0

    def test_root_is_return(self, planner):
        plan = planner.plan_sql("select amount from sales")
        assert plan.op_type is OperatorType.RETURN


class TestJoins:
    def test_two_way_join_produces_one_join_operator(self, planner):
        plan = planner.plan_sql(
            "select s.amount from sales s, items i where s.item_id = i.item_id"
        )
        joins = plan.count_operator(OperatorType.HSJOIN) + plan.count_operator(
            OperatorType.NLJOIN
        )
        assert joins == 1
        assert set(plan.leaf_tables()) == {"sales", "items"}

    def test_three_way_join(self, planner):
        plan = planner.plan_sql(
            "select s.amount from sales s, items i, stores st "
            "where s.item_id = i.item_id and s.store_id = st.store_id"
        )
        joins = plan.count_operator(OperatorType.HSJOIN) + plan.count_operator(
            OperatorType.NLJOIN
        )
        assert joins == 2
        assert len(plan.leaf_tables()) == 3

    def test_small_outer_with_indexed_inner_prefers_nested_loop(self, planner):
        # stores (50 rows) joined to indexed items → NLJOIN territory.
        plan = planner.plan_sql(
            "select i.price from stores st, items i where st.store_id = i.item_id"
        )
        assert plan.count_operator(OperatorType.NLJOIN) == 1

    def test_large_inputs_prefer_hash_join(self, planner):
        plan = planner.plan_sql(
            "select s.amount from sales s, items i "
            "where s.item_id = i.item_id and s.quantity > 1"
        )
        # sales after a weak filter is far above the NL threshold.
        assert plan.count_operator(OperatorType.HSJOIN) >= 1

    def test_join_cardinality_not_below_one(self, planner):
        plan = planner.plan_sql(
            "select s.amount from sales s, items i where s.item_id = i.item_id and i.item_id = 1"
        )
        for node in plan.walk():
            assert node.est_cardinality >= 1.0
            assert node.true_cardinality >= 1.0


class TestAggregationAndOrdering:
    def test_group_by_adds_grpby(self, planner):
        plan = planner.plan_sql(
            "select category, sum(price) from items group by category"
        )
        assert plan.count_operator(OperatorType.GRPBY) == 1

    def test_scalar_aggregate_adds_grpby_with_single_group(self, planner):
        plan = planner.plan_sql("select count(*) from sales")
        grpby = [n for n in plan.walk() if n.op_type is OperatorType.GRPBY][0]
        assert grpby.est_cardinality == pytest.approx(1.0)

    def test_order_by_adds_sort(self, planner):
        plan = planner.plan_sql("select amount from sales order by amount")
        assert plan.count_operator(OperatorType.SORT) == 1

    def test_distinct_adds_sort(self, planner):
        plan = planner.plan_sql("select distinct store_id from sales")
        assert plan.count_operator(OperatorType.SORT) == 1

    def test_limit_caps_return_cardinality(self, planner):
        plan = planner.plan_sql("select amount from sales limit 10")
        assert plan.est_cardinality <= 10.0

    def test_group_count_bounded_by_ndv(self, planner):
        plan = planner.plan_sql(
            "select category, count(*) from items group by category"
        )
        grpby = [n for n in plan.walk() if n.op_type is OperatorType.GRPBY][0]
        assert grpby.est_cardinality <= 20.0


class TestDmlPlans:
    def test_insert_plan(self, planner):
        plan = planner.plan_sql("insert into stores (store_id, region) values (1, 'West')")
        assert plan.count_operator(OperatorType.INSERT) == 1

    def test_update_plan_contains_scan_and_update(self, planner):
        plan = planner.plan_sql("update items set price = 9 where item_id = 3")
        assert plan.count_operator(OperatorType.UPDATE) == 1
        assert plan.count_operator(OperatorType.IXSCAN) + plan.count_operator(OperatorType.TBSCAN) == 1

    def test_delete_plan(self, planner):
        plan = planner.plan_sql("delete from stores where store_id = 1")
        assert plan.count_operator(OperatorType.DELETE) == 1


class TestCardinalityAnnotations:
    def test_every_node_has_consistent_cardinalities(self, planner):
        plan = planner.plan_sql(
            "select category, sum(amount) from sales s, items i "
            "where s.item_id = i.item_id and i.category = 'Books' group by category"
        )
        for node in plan.walk():
            assert node.est_cardinality > 0.0
            assert node.true_cardinality > 0.0
            assert node.row_width >= 8

    def test_scan_output_not_above_table_rows(self, planner, toy_catalog):
        plan = planner.plan_sql("select amount from sales where store_id = 3")
        scan = [n for n in plan.walk() if n.op_type is OperatorType.TBSCAN][0]
        assert scan.est_cardinality <= toy_catalog.table("sales").row_count


class TestPlannerErrors:
    def test_unknown_table_raises(self, planner):
        from repro.exceptions import CatalogError

        with pytest.raises(CatalogError):
            planner.plan_sql("select a from missing_table")

    def test_plan_unsupported_statement_type(self, planner):
        with pytest.raises(PlanningError):
            planner.plan("not a statement")  # type: ignore[arg-type]
