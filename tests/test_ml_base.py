"""Tests for the estimator base classes and validation helpers."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)


class _DummyRegressor(BaseEstimator, RegressorMixin):
    def __init__(self, alpha: float = 1.0, *, verbose: bool = False) -> None:
        self.alpha = alpha
        self.verbose = verbose
        self.mean_ = None

    def fit(self, X, y):
        self.mean_ = float(np.mean(y))
        return self

    def predict(self, X):
        return np.full(len(X), self.mean_)


class TestCheckArray:
    def test_accepts_list_of_lists(self):
        result = check_array([[1, 2], [3, 4]])
        assert result.shape == (2, 2)
        assert result.dtype == np.float64

    def test_rejects_1d_by_default(self):
        with pytest.raises(InvalidParameterError):
            check_array([1.0, 2.0, 3.0])

    def test_accepts_1d_when_allowed(self):
        result = check_array([1.0, 2.0], ensure_2d=False)
        assert result.shape == (2,)

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(InvalidParameterError):
            check_array([[np.inf, 1.0]])

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            check_array(np.zeros((0, 3)))


class TestCheckXY:
    def test_matching_lengths(self):
        X, y = check_X_y([[1.0], [2.0]], [1.0, 2.0])
        assert X.shape == (2, 1)
        assert y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            check_X_y([[1.0], [2.0]], [1.0])

    def test_nan_target_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_X_y([[1.0]], [np.nan])


class TestCheckRandomState:
    def test_seed_gives_generator(self):
        generator = check_random_state(3)
        assert isinstance(generator, np.random.Generator)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)


class TestBaseEstimator:
    def test_get_params(self):
        model = _DummyRegressor(alpha=2.5, verbose=True)
        assert model.get_params() == {"alpha": 2.5, "verbose": True}

    def test_set_params_roundtrip(self):
        model = _DummyRegressor()
        model.set_params(alpha=9.0)
        assert model.alpha == 9.0

    def test_set_params_unknown_raises(self):
        with pytest.raises(InvalidParameterError):
            _DummyRegressor().set_params(gamma=1.0)

    def test_clone_is_unfitted_copy(self):
        model = _DummyRegressor(alpha=4.0)
        model.fit([[1.0]], [2.0])
        copy = model.clone()
        assert copy.alpha == 4.0
        assert copy.mean_ is None

    def test_repr_contains_params(self):
        assert "alpha=1.0" in repr(_DummyRegressor())


class TestRegressorMixin:
    def test_perfect_score_is_one(self):
        model = _DummyRegressor().fit([[0.0], [0.0]], [5.0, 5.0])
        assert model.score([[0.0], [0.0]], [5.0, 5.0]) == pytest.approx(1.0)

    def test_mean_prediction_scores_zero(self):
        model = _DummyRegressor().fit([[0.0], [0.0]], [0.0, 10.0])
        assert model.score([[0.0], [0.0]], [0.0, 10.0]) == pytest.approx(0.0)


class TestCheckIsFitted:
    def test_raises_before_fit(self):
        with pytest.raises(NotFittedError):
            check_is_fitted(_DummyRegressor(), "mean_")

    def test_passes_after_fit(self):
        model = _DummyRegressor().fit([[1.0]], [1.0])
        check_is_fitted(model, "mean_")
