"""Tests for plan operator nodes."""

from repro.dbms.plan.operators import BLOCKING_OPERATORS, OperatorType, PlanNode


def _sample_plan() -> PlanNode:
    scan_left = PlanNode(OperatorType.TBSCAN, est_cardinality=1000.0, table="sales", row_width=32)
    scan_right = PlanNode(OperatorType.IXSCAN, est_cardinality=10.0, table="items", row_width=16)
    join = PlanNode(
        OperatorType.HSJOIN,
        est_cardinality=900.0,
        row_width=48,
        children=[scan_left, scan_right],
    )
    group = PlanNode(OperatorType.GRPBY, est_cardinality=20.0, children=[join])
    return PlanNode(OperatorType.RETURN, est_cardinality=20.0, children=[group])


class TestPlanNode:
    def test_walk_preorder(self):
        plan = _sample_plan()
        ops = [node.op_type for node in plan.walk()]
        assert ops == [
            OperatorType.RETURN,
            OperatorType.GRPBY,
            OperatorType.HSJOIN,
            OperatorType.TBSCAN,
            OperatorType.IXSCAN,
        ]

    def test_count_operator(self):
        plan = _sample_plan()
        assert plan.count_operator(OperatorType.TBSCAN) == 1
        assert plan.count_operator(OperatorType.SORT) == 0

    def test_node_count_and_depth(self):
        plan = _sample_plan()
        assert plan.node_count() == 5
        assert plan.depth() == 4

    def test_leaf_tables(self):
        assert _sample_plan().leaf_tables() == ["sales", "items"]

    def test_explain_contains_operator_names_and_indentation(self):
        text = _sample_plan().explain()
        assert "RETURN" in text
        assert "  GRPBY" in text
        assert "      IXSCAN items" in text

    def test_blocking_operator_set(self):
        assert OperatorType.SORT in BLOCKING_OPERATORS
        assert OperatorType.HSJOIN in BLOCKING_OPERATORS
        assert OperatorType.TBSCAN not in BLOCKING_OPERATORS

    def test_operator_type_str(self):
        assert str(OperatorType.NLJOIN) == "NLJOIN"
