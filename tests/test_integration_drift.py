"""Tests for the workload-drift detectors."""

import numpy as np
import pytest

from repro.core.template_methods import PlanTemplates
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.integration.drift import (
    ErrorDriftDetector,
    HistogramDriftDetector,
    population_stability_index,
)


class TestPopulationStabilityIndex:
    def test_identical_distributions_score_zero(self):
        counts = np.array([10.0, 20.0, 30.0, 40.0])
        assert population_stability_index(counts, counts) == pytest.approx(0.0, abs=1e-9)

    def test_scaling_does_not_matter(self):
        reference = np.array([10.0, 20.0, 30.0])
        assert population_stability_index(reference, reference * 7.5) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_shifted_distribution_scores_positive(self):
        reference = np.array([40.0, 40.0, 10.0, 10.0])
        observed = np.array([10.0, 10.0, 40.0, 40.0])
        assert population_stability_index(reference, observed) > 0.25

    def test_symmetry(self):
        a = np.array([30.0, 50.0, 20.0])
        b = np.array([20.0, 30.0, 50.0])
        assert population_stability_index(a, b) == pytest.approx(
            population_stability_index(b, a)
        )

    def test_rejects_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            population_stability_index(np.array([]), np.array([]))
        with pytest.raises(InvalidParameterError):
            population_stability_index(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(InvalidParameterError):
            population_stability_index(np.array([0.0, 0.0]), np.array([1.0, 1.0]))


class TestHistogramDriftDetector:
    def test_no_drift_on_same_benchmark(self, tpcds_small):
        # A fresh window of the *same* benchmark should score well below the
        # drift threshold (PSI carries some sampling noise, hence the larger
        # TPC-DS fixture and a modest template count).
        templates = PlanTemplates(12, random_state=0).fit(tpcds_small.train_records)
        detector = HistogramDriftDetector(templates, threshold=0.25)
        detector.fit_reference(tpcds_small.train_records)
        report = detector.check(tpcds_small.test_records)
        assert not report.drifted
        assert report.score < 0.25

    def test_drift_when_template_mix_changes(self, tpcds_small):
        templates = PlanTemplates(12, random_state=0).fit(tpcds_small.train_records)
        detector = HistogramDriftDetector(templates, threshold=0.25)
        detector.fit_reference(tpcds_small.train_records)
        # Simulate a shifted workload: only the queries of a single template.
        assignments = templates.assign(tpcds_small.test_records)
        dominant = int(np.bincount(assignments).argmax())
        shifted = [
            record
            for record, label in zip(tpcds_small.test_records, assignments)
            if label == dominant
        ]
        report = detector.check(shifted)
        assert report.drifted
        assert report.score > 0.25

    def test_requires_reference(self, job_small):
        templates = PlanTemplates(8, random_state=0).fit(job_small.train_records)
        detector = HistogramDriftDetector(templates)
        with pytest.raises(NotFittedError):
            detector.check(job_small.test_records)

    def test_rejects_empty_inputs(self, job_small):
        templates = PlanTemplates(8, random_state=0).fit(job_small.train_records)
        detector = HistogramDriftDetector(templates)
        with pytest.raises(InvalidParameterError):
            detector.fit_reference([])
        detector.fit_reference(job_small.train_records)
        with pytest.raises(InvalidParameterError):
            detector.check([])


class TestErrorDriftDetector:
    def test_accurate_predictions_do_not_drift(self):
        detector = ErrorDriftDetector(threshold_mape=25.0, min_observations=5)
        for actual in np.linspace(10.0, 100.0, 20):
            detector.observe(predicted_mb=actual * 1.05, actual_mb=actual)
        report = detector.check()
        assert not report.drifted
        assert report.score == pytest.approx(5.0, rel=0.05)

    def test_bad_predictions_drift(self):
        detector = ErrorDriftDetector(threshold_mape=25.0, min_observations=5)
        for actual in np.linspace(10.0, 100.0, 20):
            detector.observe(predicted_mb=actual * 2.0, actual_mb=actual)
        assert detector.check().drifted

    def test_no_drift_before_min_observations(self):
        detector = ErrorDriftDetector(threshold_mape=10.0, min_observations=10)
        for _ in range(5):
            detector.observe(predicted_mb=100.0, actual_mb=10.0)
        assert not detector.check().drifted

    def test_window_forgets_old_errors(self):
        detector = ErrorDriftDetector(threshold_mape=25.0, window=10, min_observations=5)
        for _ in range(10):
            detector.observe(predicted_mb=200.0, actual_mb=10.0)
        assert detector.check().drifted
        for _ in range(10):
            detector.observe(predicted_mb=10.0, actual_mb=10.0)
        assert not detector.check().drifted

    def test_zero_actual_skipped_and_reset(self):
        detector = ErrorDriftDetector()
        detector.observe(predicted_mb=5.0, actual_mb=0.0)
        assert detector.n_observations == 0
        detector.observe(predicted_mb=5.0, actual_mb=10.0)
        assert detector.n_observations == 1
        detector.reset()
        assert detector.n_observations == 0
        assert detector.rolling_mape == 0.0

    def test_observe_many_validates_lengths(self):
        detector = ErrorDriftDetector()
        with pytest.raises(InvalidParameterError):
            detector.observe_many([1.0, 2.0], [1.0])

    def test_invalid_configuration_rejected(self):
        with pytest.raises(InvalidParameterError):
            ErrorDriftDetector(threshold_mape=0.0)
        with pytest.raises(InvalidParameterError):
            ErrorDriftDetector(window=0)
        with pytest.raises(InvalidParameterError):
            ErrorDriftDetector(window=5, min_observations=10)
