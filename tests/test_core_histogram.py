"""Tests for workload-histogram construction (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.histogram import bin_queries, bin_workload, build_histogram_dataset
from repro.core.template_methods import PlanTemplates
from repro.core.workload import Workload, make_workloads
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def templates(tpcds_small):
    return PlanTemplates(12, random_state=0).fit(tpcds_small.train_records)


class TestBinQueries:
    def test_histogram_sums_to_query_count(self, templates, tpcds_small):
        queries = tpcds_small.test_records[:10]
        histogram = bin_queries(queries, templates)
        assert histogram.shape == (templates.k,)
        assert histogram.sum() == pytest.approx(len(queries))

    def test_histogram_counts_nonnegative_integers(self, templates, tpcds_small):
        histogram = bin_queries(tpcds_small.test_records[:25], templates)
        assert np.all(histogram >= 0.0)
        assert np.allclose(histogram, np.round(histogram))

    def test_sparsity_expected(self, templates, tpcds_small):
        # A 10-query workload cannot populate more than 10 of the k bins.
        histogram = bin_queries(tpcds_small.test_records[:10], templates)
        assert np.count_nonzero(histogram) <= 10


class TestBinWorkload:
    def test_returns_histogram_and_label(self, templates, tpcds_small):
        workload = Workload(queries=list(tpcds_small.test_records[:10]))
        histogram, label = bin_workload(workload, templates)
        assert histogram.sum() == pytest.approx(10)
        assert label == pytest.approx(workload.actual_memory_mb)

    def test_unlabelled_workload_gives_none(self, templates, tpcds_small):
        workload = Workload(queries=[])
        workload.queries = list(tpcds_small.test_records[:5])  # label stays None
        histogram, label = bin_workload(workload, templates)
        assert label is None
        assert histogram.sum() == pytest.approx(5)


class TestBuildHistogramDataset:
    def test_shapes_and_labels(self, templates, tpcds_small):
        workloads = make_workloads(tpcds_small.train_records[:100], 10, seed=0)
        X, y = build_histogram_dataset(workloads, templates)
        assert X.shape == (10, templates.k)
        assert y.shape == (10,)
        assert np.all(X.sum(axis=1) == 10)
        assert np.all(y > 0)

    def test_empty_workload_list_rejected(self, templates):
        with pytest.raises(InvalidParameterError):
            build_histogram_dataset([], templates)

    def test_unlabelled_workload_rejected(self, templates, tpcds_small):
        workload = Workload(queries=[])
        workload.queries = list(tpcds_small.train_records[:5])
        with pytest.raises(InvalidParameterError):
            build_histogram_dataset([workload], templates)
