"""Tests for the unified model registry (repro.registry).

Exercises what the merge of the two old registries has to guarantee:
promotion/rollback interleaved with retrain lineage on the same storage,
explicit-version registration with duplicate rejection, and the deprecated
import paths (``repro.serving.registry.ModelRegistry``,
``repro.integration.lifecycle.ModelRegistry``) still working while warning
exactly once.
"""

import warnings

import pytest

from repro.exceptions import NotFittedError, ServingError
from repro.integration.predictors import ConstantMemoryPredictor
from repro.registry import ModelRegistry, ModelVersion


def predictor(value: float = 64.0) -> ConstantMemoryPredictor:
    return ConstantMemoryPredictor(value)


class TestLineage:
    def test_history_records_provenance_in_order(self):
        registry = ModelRegistry()
        registry.register(
            "m", predictor(1.0), n_training_records=100, validation_mape=20.0, reason="bootstrap"
        )
        registry.register(
            "m", predictor(2.0), promote=True, n_training_records=250, reason="drift"
        )
        history = registry.history("m")
        assert [v.version for v in history] == [1, 2]
        assert [v.reason for v in history] == ["bootstrap", "drift"]
        assert history[0].n_training_records == 100
        assert history[0].validation_mape == 20.0
        assert history[1].validation_mape is None

    def test_history_of_unknown_name_is_empty(self):
        assert ModelRegistry().history("nope") == []

    def test_latest_returns_newest_registration(self):
        registry = ModelRegistry()
        registry.register("m", predictor(1.0))
        registry.register("m", predictor(2.0))  # registered, NOT promoted
        latest = registry.latest("m")
        assert latest.version == 2
        assert registry.active_version("m") == 1  # active and latest can differ

    def test_latest_on_empty_lineage_raises_not_fitted(self):
        with pytest.raises(NotFittedError):
            ModelRegistry().latest("m")

    def test_len_counts_all_versions_across_names(self):
        registry = ModelRegistry()
        assert len(registry) == 0
        registry.register("a", predictor())
        registry.register("a", predictor())
        registry.register("b", predictor())
        assert len(registry) == 3
        assert "a" in registry and "c" not in registry


class TestPromotionInterleavedWithLineage:
    def test_rollback_preserves_lineage(self):
        registry = ModelRegistry()
        registry.register("m", predictor(1.0), reason="bootstrap")
        registry.register("m", predictor(2.0), promote=True, reason="drift")
        registry.register("m", predictor(3.0), promote=True, reason="scheduled")
        assert registry.rollback("m") == 2
        # Rolling back the active pointer must not rewrite history.
        assert [v.version for v in registry.history("m")] == [1, 2, 3]
        assert registry.latest("m").version == 3
        assert registry.active_version("m") == 2

    def test_register_after_rollback_continues_numbering(self):
        registry = ModelRegistry()
        registry.register("m", predictor(1.0), promote=True)
        registry.register("m", predictor(2.0), promote=True)
        registry.rollback("m")
        version = registry.register("m", predictor(3.0), promote=True, reason="retrain")
        assert version == 3
        assert registry.active_version("m") == 3
        # Rollback now returns to the pre-retrain active version (1).
        assert registry.rollback("m") == 1
        assert [v.reason for v in registry.history("m")] == [None, None, "retrain"]

    def test_describe_includes_lineage_fields(self):
        registry = ModelRegistry()
        registry.register("m", predictor(), n_training_records=42, reason="bootstrap")
        info = registry.describe()["m"]["versions"][1]
        assert info["n_training_records"] == 42
        assert info["reason"] == "bootstrap"


class TestExplicitVersions:
    def test_explicit_version_is_honored(self):
        registry = ModelRegistry()
        assert registry.register("m", predictor(), version=5) == 5
        assert registry.versions("m") == [5]
        assert registry.register("m", predictor()) == 6

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.register("m", predictor(), version=3)
        with pytest.raises(ServingError, match="already has a version 3"):
            registry.register("m", predictor(), version=3)

    def test_version_numbers_only_grow(self):
        registry = ModelRegistry()
        registry.register("m", predictor(), version=3)
        with pytest.raises(ServingError, match="only grow"):
            registry.register("m", predictor(), version=2)


class TestDeprecatedImportPaths:
    def test_serving_shim_works_and_warns_exactly_once(self):
        from repro.serving.registry import ModelRegistry as ServingShim

        ServingShim._deprecation_warned = False  # make the test order-independent
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = ServingShim()
            second = ServingShim()
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.registry" in str(deprecations[0].message)
        # The shim is the unified class: same behavior, isinstance both ways.
        assert isinstance(first, ModelRegistry)
        first.register("m", predictor(1.0))
        first.register("m", predictor(2.0), promote=True)
        assert first.rollback("m") == 1
        assert second.history("m") == []

    def test_lifecycle_shim_works_and_warns_exactly_once(self):
        from repro.integration.lifecycle import ModelRegistry as LifecycleShim

        LifecycleShim._deprecation_warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = LifecycleShim()
            LifecycleShim()
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        # Old single-lineage surface still works on top of the unified registry.
        with pytest.raises(NotFittedError):
            _ = shim.current
        version = shim.register(
            predictor(1.0), n_training_records=10, validation_mape=None, reason="bootstrap"
        )
        assert isinstance(version, ModelVersion)
        assert shim.current is version
        assert len(shim) == 1
        assert [v.version for v in shim.history] == [1]
        # ... and it is a *view* over a unified registry.
        assert shim.registry.active("default") is version.model

    def test_bare_name_resolves_to_the_unified_class_everywhere(self):
        import repro
        import repro.integration
        import repro.serving

        assert repro.ModelRegistry is ModelRegistry
        assert repro.serving.ModelRegistry is ModelRegistry
        assert repro.integration.ModelRegistry is ModelRegistry
