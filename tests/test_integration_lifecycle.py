"""Tests for the model registry and the pre-train / observe / retrain loop."""

import pytest

from repro.core.model import LearnedWMP
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.integration.lifecycle import ModelLifecycleManager, ModelRegistry


def _factory():
    return LearnedWMP(
        regressor="xgb", n_templates=12, batch_size=10, random_state=0, fast=True
    )


def _manager(min_new_records=100):
    return ModelLifecycleManager(
        model_factory=_factory,
        min_new_records=min_new_records,
        batch_size=10,
        seed=0,
    )


class TestModelRegistry:
    def test_empty_registry_raises(self):
        registry = ModelRegistry()
        with pytest.raises(NotFittedError):
            _ = registry.current
        assert len(registry) == 0

    def test_register_promotes_latest(self, tpcc_small):
        registry = ModelRegistry()
        first = _factory().fit(tpcc_small.train_records[:200])
        second = _factory().fit(tpcc_small.train_records[:300])
        registry.register(first, n_training_records=200, validation_mape=None, reason="bootstrap")
        version = registry.register(
            second, n_training_records=300, validation_mape=12.5, reason="drift"
        )
        assert registry.current is version
        assert registry.current.version == 2
        assert [v.version for v in registry.history] == [1, 2]


class TestBootstrap:
    def test_bootstrap_creates_version_one(self, tpcc_small):
        manager = _manager()
        version = manager.bootstrap(tpcc_small.train_records[:400])
        assert version.version == 1
        assert version.reason == "bootstrap"
        assert version.validation_mape is not None and version.validation_mape >= 0.0
        # The deployed model answers predictions immediately.
        assert manager.predict_workload(tpcc_small.test_records[:10]) > 0.0

    def test_double_bootstrap_rejected(self, tpcc_small):
        manager = _manager()
        manager.bootstrap(tpcc_small.train_records[:300])
        with pytest.raises(InvalidParameterError):
            manager.bootstrap(tpcc_small.train_records[:300])

    def test_bootstrap_requires_enough_records(self, tpcc_small):
        manager = _manager()
        with pytest.raises(InvalidParameterError):
            manager.bootstrap(tpcc_small.train_records[:5])

    def test_invalid_configuration_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelLifecycleManager(model_factory=_factory, validation_fraction=1.0)
        with pytest.raises(InvalidParameterError):
            ModelLifecycleManager(model_factory=_factory, min_new_records=0)


class TestRetrainDecisions:
    def test_no_model_means_no_retrain(self):
        decision = _manager().should_retrain()
        assert not decision.retrain
        assert "no bootstrapped model" in decision.reason

    def test_too_few_new_records(self, tpcc_small):
        manager = _manager(min_new_records=200)
        manager.bootstrap(tpcc_small.train_records[:300])
        manager.observe(tpcc_small.test_records[:50])
        decision = manager.should_retrain()
        assert not decision.retrain
        assert manager.n_new_records == 50

    def test_same_workload_does_not_trigger_drift_retrain(self, tpcc_small):
        manager = _manager(min_new_records=50)
        manager.bootstrap(tpcc_small.train_records[:300])
        manager.observe(tpcc_small.test_records[:60])
        decision = manager.should_retrain()
        # Same benchmark, same mix: only the "corpus doubled" rule could fire,
        # and 60 < 300 observed records keeps it off.
        assert not decision.retrain
        assert decision.histogram_drift is not None
        assert not decision.histogram_drift.drifted

    def test_corpus_growth_triggers_refresh(self, tpcc_small):
        manager = _manager(min_new_records=50)
        manager.bootstrap(tpcc_small.train_records[:150])
        manager.observe(tpcc_small.train_records[150:320])
        decision = manager.should_retrain()
        assert decision.retrain
        assert decision.reason == "training corpus doubled"

    def test_error_feedback_triggers_retrain(self, tpcc_small):
        manager = _manager(min_new_records=50)
        manager.bootstrap(tpcc_small.train_records[:300])
        manager.observe(tpcc_small.test_records[:60])
        for _ in range(20):
            manager.observe_feedback(predicted_mb=500.0, actual_mb=10.0)
        decision = manager.should_retrain()
        assert decision.retrain
        assert decision.reason == "prediction-error drift"


class TestMaybeRetrain:
    def test_retrain_promotes_new_version_and_resets_counters(self, tpcc_small):
        manager = _manager(min_new_records=50)
        manager.bootstrap(tpcc_small.train_records[:150])
        manager.observe(tpcc_small.train_records[150:320])
        version = manager.maybe_retrain()
        assert version is not None
        assert version.version == 2
        assert manager.n_new_records == 0
        assert manager.registry.current is version
        # The new version trained on the combined corpus.
        assert version.n_training_records > 150 * (1.0 - manager.validation_fraction) - 1

    def test_no_retrain_returns_none(self, tpcc_small):
        manager = _manager(min_new_records=500)
        manager.bootstrap(tpcc_small.train_records[:300])
        assert manager.maybe_retrain() is None
        assert len(manager.registry) == 1


class TestServingBridge:
    """Retrained versions are published into a serving registry when given."""

    def test_bootstrap_publishes_to_serving_registry(self, tpcc_small):
        from repro.serving import ModelRegistry as ServingRegistry

        serving = ServingRegistry()
        manager = ModelLifecycleManager(
            model_factory=_factory,
            min_new_records=100,
            batch_size=10,
            seed=0,
            serving_registry=serving,
            serving_name="tpcc",
        )
        version = manager.bootstrap(tpcc_small.train_records[:300])
        assert serving.active_version("tpcc") == 1
        assert serving.active("tpcc") is version.model

    def test_retrain_hot_swaps_served_model(self, tpcc_small):
        from repro.serving import ModelRegistry as ServingRegistry

        serving = ServingRegistry()
        manager = ModelLifecycleManager(
            model_factory=_factory,
            min_new_records=50,
            batch_size=10,
            seed=0,
            serving_registry=serving,
        )
        manager.bootstrap(tpcc_small.train_records[:200])
        # Corpus-doubling refresh: observe more records than the corpus.
        manager.observe(tpcc_small.train_records[:250])
        retrained = manager.maybe_retrain()
        assert retrained is not None
        assert serving.active_version("default") == 2
        assert serving.active("default") is retrained.model
        # The previous version is still there for rollback.
        assert serving.rollback("default") == 1
