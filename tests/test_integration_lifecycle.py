"""Tests for the pre-train / observe / retrain loop over the unified registry."""

import pytest

from repro.core.model import LearnedWMP
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.integration.lifecycle import ModelLifecycleManager
from repro.registry import ModelRegistry


def _factory():
    return LearnedWMP(
        regressor="xgb", n_templates=12, batch_size=10, random_state=0, fast=True
    )


def _manager(min_new_records=100, **kwargs):
    return ModelLifecycleManager(
        model_factory=_factory,
        min_new_records=min_new_records,
        batch_size=10,
        seed=0,
        **kwargs,
    )


class TestLineage:
    def test_empty_lineage_raises(self):
        manager = _manager()
        with pytest.raises(NotFittedError):
            _ = manager.current_version
        assert manager.n_versions == 0

    def test_versions_accumulate_with_provenance(self, tpcc_small):
        registry = ModelRegistry()
        manager = _manager(min_new_records=50, registry=registry, model_name="tpcc")
        manager.bootstrap(tpcc_small.train_records[:150])
        manager.observe(tpcc_small.train_records[150:320])
        manager.maybe_retrain()
        history = registry.history("tpcc")
        assert [v.version for v in history] == [1, 2]
        assert history[0].reason == "bootstrap"
        assert history[1].reason == "training corpus doubled"
        assert all(v.n_training_records is not None for v in history)
        assert manager.current_version is history[-1]


class TestBootstrap:
    def test_bootstrap_creates_version_one(self, tpcc_small):
        manager = _manager()
        version = manager.bootstrap(tpcc_small.train_records[:400])
        assert version.version == 1
        assert version.reason == "bootstrap"
        assert version.validation_mape is not None and version.validation_mape >= 0.0
        # The deployed model answers predictions immediately.
        assert manager.predict_workload(tpcc_small.test_records[:10]) > 0.0

    def test_double_bootstrap_rejected(self, tpcc_small):
        manager = _manager()
        manager.bootstrap(tpcc_small.train_records[:300])
        with pytest.raises(InvalidParameterError):
            manager.bootstrap(tpcc_small.train_records[:300])

    def test_bootstrap_requires_enough_records(self, tpcc_small):
        manager = _manager()
        with pytest.raises(InvalidParameterError):
            manager.bootstrap(tpcc_small.train_records[:5])

    def test_invalid_configuration_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelLifecycleManager(model_factory=_factory, validation_fraction=1.0)
        with pytest.raises(InvalidParameterError):
            ModelLifecycleManager(model_factory=_factory, min_new_records=0)

    def test_predictor_exposes_typed_protocol(self, tpcc_small):
        from repro.api import PredictionRequest, Predictor

        manager = _manager(model_name="tpcc")
        manager.bootstrap(tpcc_small.train_records[:300])
        predictor = manager.predictor()
        assert isinstance(predictor, Predictor)
        result = predictor.predict(PredictionRequest.of(tpcc_small.test_records[:10]))
        assert result.memory_mb > 0.0
        assert result.model_name == "tpcc"
        assert result.model_version == 1


class TestRetrainDecisions:
    def test_no_model_means_no_retrain(self):
        decision = _manager().should_retrain()
        assert not decision.retrain
        assert "no bootstrapped model" in decision.reason

    def test_too_few_new_records(self, tpcc_small):
        manager = _manager(min_new_records=200)
        manager.bootstrap(tpcc_small.train_records[:300])
        manager.observe(tpcc_small.test_records[:50])
        decision = manager.should_retrain()
        assert not decision.retrain
        assert manager.n_new_records == 50

    def test_same_workload_does_not_trigger_drift_retrain(self, tpcc_small):
        manager = _manager(min_new_records=50)
        manager.bootstrap(tpcc_small.train_records[:300])
        manager.observe(tpcc_small.test_records[:60])
        decision = manager.should_retrain()
        # Same benchmark, same mix: only the "corpus doubled" rule could fire,
        # and 60 < 300 observed records keeps it off.
        assert not decision.retrain
        assert decision.histogram_drift is not None
        assert not decision.histogram_drift.drifted

    def test_corpus_growth_triggers_refresh(self, tpcc_small):
        manager = _manager(min_new_records=50)
        manager.bootstrap(tpcc_small.train_records[:150])
        manager.observe(tpcc_small.train_records[150:320])
        decision = manager.should_retrain()
        assert decision.retrain
        assert decision.reason == "training corpus doubled"

    def test_error_feedback_triggers_retrain(self, tpcc_small):
        manager = _manager(min_new_records=50)
        manager.bootstrap(tpcc_small.train_records[:300])
        manager.observe(tpcc_small.test_records[:60])
        for _ in range(20):
            manager.observe_feedback(predicted_mb=500.0, actual_mb=10.0)
        decision = manager.should_retrain()
        assert decision.retrain
        assert decision.reason == "prediction-error drift"


class TestMaybeRetrain:
    def test_retrain_promotes_new_version_and_resets_counters(self, tpcc_small):
        manager = _manager(min_new_records=50)
        manager.bootstrap(tpcc_small.train_records[:150])
        manager.observe(tpcc_small.train_records[150:320])
        version = manager.maybe_retrain()
        assert version is not None
        assert version.version == 2
        assert manager.n_new_records == 0
        assert manager.current_version is version
        # The new version trained on the combined corpus.
        assert version.n_training_records > 150 * (1.0 - manager.validation_fraction) - 1

    def test_no_retrain_returns_none(self, tpcc_small):
        manager = _manager(min_new_records=500)
        manager.bootstrap(tpcc_small.train_records[:300])
        assert manager.maybe_retrain() is None
        assert manager.n_versions == 1


class TestServingUnification:
    """Retrained versions hot-swap a server resolving from the same registry."""

    def test_bootstrap_promotes_in_shared_registry(self, tpcc_small):
        registry = ModelRegistry()
        manager = _manager(min_new_records=100, registry=registry, model_name="tpcc")
        version = manager.bootstrap(tpcc_small.train_records[:300])
        assert registry.active_version("tpcc") == 1
        assert registry.active("tpcc") is version.model

    def test_retrain_hot_swaps_served_model(self, tpcc_small):
        registry = ModelRegistry()
        manager = _manager(min_new_records=50, registry=registry)
        manager.bootstrap(tpcc_small.train_records[:200])
        # Corpus-doubling refresh: observe more records than the corpus.
        manager.observe(tpcc_small.train_records[:250])
        retrained = manager.maybe_retrain()
        assert retrained is not None
        assert registry.active_version("default") == 2
        assert registry.active("default") is retrained.model
        # The previous version is still there for rollback.
        assert registry.rollback("default") == 1

    def test_deprecated_lifecycle_shim_as_registry_is_unwrapped(self, tpcc_small):
        from repro.integration.lifecycle import ModelRegistry as LifecycleShim

        LifecycleShim._deprecation_warned = False
        with pytest.warns(DeprecationWarning):
            shim = LifecycleShim(name="tpcc")
        manager = _manager(min_new_records=100, registry=shim)
        assert isinstance(manager.registry, ModelRegistry)
        assert manager.model_name == "tpcc"
        manager.bootstrap(tpcc_small.train_records[:300])
        assert shim.current.version == 1  # the shim view sees the same lineage

    def test_deprecated_serving_registry_params_redirect(self, tpcc_small):
        registry = ModelRegistry()
        with pytest.warns(DeprecationWarning, match="serving_registry"):
            manager = _manager(
                min_new_records=100, serving_registry=registry, serving_name="tpcc"
            )
        assert manager.registry is registry
        assert manager.model_name == "tpcc"
        manager.bootstrap(tpcc_small.train_records[:300])
        assert registry.active_version("tpcc") == 1
