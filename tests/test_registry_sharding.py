"""Tests for the consistent-hash ring and the sharded model registry.

The ring tests pin the property the whole sharded tier rests on: placement
moves *minimally* under membership change.  Hashing is deterministic
(BLAKE2b over the key text), so the movement counts asserted here are exact
for these keys, not flaky statistics.
"""

import pytest

from repro.exceptions import InvalidParameterError, ServingError
from repro.registry import (
    ConsistentHashRing,
    ModelRegistry,
    ShardedModelRegistry,
)


class Model:
    """A minimal registrable predictor stand-in."""

    def __init__(self, value: float = 1.0) -> None:
        self.value = value

    def predict_workload(self, queries) -> float:
        return self.value


KEYS = [f"model-{index}" for index in range(600)]


class TestConsistentHashRing:
    def test_routing_is_deterministic_across_instances(self):
        first = ConsistentHashRing(["a", "b", "c"], virtual_nodes=32)
        second = ConsistentHashRing(["a", "b", "c"], virtual_nodes=32)
        assert [first.route(key) for key in KEYS] == [second.route(key) for key in KEYS]

    def test_empty_ring_routing_raises(self):
        ring = ConsistentHashRing()
        with pytest.raises(ServingError, match="empty hash ring"):
            ring.route("anything")

    def test_membership_errors(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ServingError, match="already contains"):
            ring.add("a")
        with pytest.raises(ServingError, match="does not contain"):
            ring.remove("b")
        with pytest.raises(InvalidParameterError):
            ConsistentHashRing(virtual_nodes=0)
        with pytest.raises(InvalidParameterError):
            ring.add("")

    def test_add_moves_keys_only_to_the_new_node(self):
        ring = ConsistentHashRing([f"node-{i}" for i in range(4)], virtual_nodes=64)
        before = {key: ring.route(key) for key in KEYS}
        ring.add("node-4")
        after = {key: ring.route(key) for key in KEYS}
        moved = {key for key in KEYS if before[key] != after[key]}
        # The defining consistent-hashing property: a key either keeps its
        # node or lands on the new one — no shuffling among the old nodes.
        assert all(after[key] == "node-4" for key in moved)
        # Movement is bounded around K/N (exact for this deterministic hash;
        # the cushion covers the variance of 64 virtual nodes).
        fair_share = len(KEYS) / len(ring)
        assert 0 < len(moved) <= 1.5 * fair_share

    def test_remove_moves_only_the_removed_nodes_keys(self):
        ring = ConsistentHashRing([f"node-{i}" for i in range(5)], virtual_nodes=64)
        before = {key: ring.route(key) for key in KEYS}
        departing = {key for key in KEYS if before[key] == "node-2"}
        ring.remove("node-2")
        after = {key: ring.route(key) for key in KEYS}
        moved = {key for key in KEYS if before[key] != after[key]}
        assert moved == departing
        assert all(after[key] != "node-2" for key in KEYS)

    def test_add_then_remove_restores_placement(self):
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=64)
        before = {key: ring.route(key) for key in KEYS}
        ring.add("d")
        ring.remove("d")
        assert {key: ring.route(key) for key in KEYS} == before

    @pytest.mark.parametrize("virtual_nodes", [16, 64, 256])
    def test_routing_stable_for_each_virtual_node_count(self, virtual_nodes):
        """Placement is a pure function of (members, virtual_nodes)."""
        ring = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=virtual_nodes)
        again = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=virtual_nodes)
        assert [ring.route(key) for key in KEYS] == [again.route(key) for key in KEYS]

    def test_more_virtual_nodes_balance_the_shares(self):
        def max_share(virtual_nodes: int) -> int:
            ring = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=virtual_nodes)
            counts: dict[str, int] = {}
            for key in KEYS:
                node = ring.route(key)
                counts[node] = counts.get(node, 0) + 1
            return max(counts.values())

        # 600 keys over 4 nodes: fair share is 150.  One point per node can
        # leave a node owning most of the circle; 256 points cannot.
        assert max_share(256) < max_share(1)
        assert max_share(256) <= 1.5 * len(KEYS) / 4


class TestShardedModelRegistryRouting:
    def test_registry_surface_is_forwarded_to_the_owning_shard(self):
        registry = ShardedModelRegistry(n_shards=3)
        model = Model(10.0)
        assert registry.register("m", model) == 1
        owner = registry.shard(registry.route("m"))
        assert "m" in owner and isinstance(owner, ModelRegistry)
        assert registry.active("m") is model
        assert registry.active_version("m") == 1
        assert registry.get("m").model is model
        assert registry.versions("m") == [1]
        assert [v.version for v in registry.history("m")] == [1]
        assert registry.latest("m").version == 1
        assert "m" in registry and len(registry) == 1
        assert registry.names() == ["m"]

    def test_promote_and_rollback_through_the_front(self):
        registry = ShardedModelRegistry(n_shards=2)
        registry.register("m", Model(1.0))
        registry.register("m", Model(2.0), promote=True)
        assert registry.active("m").value == 2.0
        assert registry.rollback("m") == 1
        assert registry.active("m").value == 1.0

    def test_names_spread_over_multiple_shards(self):
        registry = ShardedModelRegistry(n_shards=4, virtual_nodes=64)
        for index in range(40):
            registry.register(f"m{index}", Model(float(index)))
        occupied = {shard for shard, names in registry.shard_map().items() if names}
        assert len(occupied) > 1
        assert len(registry.names()) == 40
        description = registry.describe()
        assert description["m0"]["shard"] == registry.route("m0")

    def test_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            ShardedModelRegistry(n_shards=0)
        with pytest.raises(InvalidParameterError):
            ShardedModelRegistry(shard_ids=["a", "a"])
        with pytest.raises(InvalidParameterError):
            ShardedModelRegistry(shard_ids=[])
        with pytest.raises(ServingError, match="unknown shard"):
            ShardedModelRegistry(n_shards=2).shard("nope")


class TestShardMembershipChanges:
    def _populated(self, n_names: int = 40) -> ShardedModelRegistry:
        registry = ShardedModelRegistry(n_shards=4)
        for index in range(n_names):
            registry.register(f"m{index}", Model(float(index)))
            if index % 3 == 0:
                registry.register(f"m{index}", Model(float(index) + 0.5), promote=True)
        return registry

    def test_add_shard_moves_only_rerouted_names_with_state(self):
        registry = self._populated()
        placement_before = {name: registry.route(name) for name in registry.names()}
        active_before = {name: registry.active(name) for name in registry.names()}
        versions_before = {name: registry.versions(name) for name in registry.names()}

        moved = registry.add_shard("shard-4")

        for name in registry.names():
            if name in moved:
                assert registry.route(name) == "shard-4"
            else:
                assert registry.route(name) == placement_before[name]
            # State travelled intact: active model object, version lineage.
            assert registry.active(name) is active_before[name]
            assert registry.versions(name) == versions_before[name]
        # Minimal movement: around K/N of K names over N=5 shards.
        assert 0 < len(moved) <= 1.5 * len(registry.names()) / 5

    def test_removed_shards_names_move_and_survive(self):
        registry = self._populated()
        victim = registry.route("m0")
        active_before = {name: registry.active(name) for name in registry.names()}
        moved = registry.remove_shard(victim)
        assert "m0" in moved
        assert victim not in registry.shard_ids()
        for name in registry.names():
            assert registry.route(name) != victim
            assert registry.active(name) is active_before[name]

    def test_rollback_still_works_after_a_move(self):
        registry = self._populated()
        registry.add_shard("shard-4")
        # m0 had two versions with v2 promoted; rollback must still see the
        # promotion history wherever the name now lives.
        assert registry.active_version("m0") == 2
        assert registry.rollback("m0") == 1

    def test_membership_errors(self):
        registry = ShardedModelRegistry(n_shards=1)
        with pytest.raises(ServingError, match="already exists"):
            registry.add_shard("shard-0")
        with pytest.raises(ServingError, match="last shard"):
            registry.remove_shard("shard-0")
        registry.add_shard("extra")
        with pytest.raises(ServingError, match="unknown shard"):
            registry.remove_shard("nope")


class TestReplication:
    def test_replicated_name_lives_on_every_shard(self):
        registry = ShardedModelRegistry(n_shards=3)
        model = Model(7.0)
        assert registry.register_replicated("hot", model) == 1
        assert registry.is_replicated("hot")
        for shard_id in registry.shard_ids():
            assert "hot" in registry.shard(shard_id)
            assert registry.shard(shard_id).active("hot") is model
        assert len(registry) == 1  # replicated versions count once

    def test_mutations_apply_to_all_shards(self):
        registry = ShardedModelRegistry(n_shards=3)
        registry.register_replicated("hot", Model(1.0))
        registry.register("hot", Model(2.0), promote=True)
        for shard_id in registry.shard_ids():
            assert registry.shard(shard_id).active("hot").value == 2.0
        registry.rollback("hot")
        for shard_id in registry.shard_ids():
            assert registry.shard(shard_id).active("hot").value == 1.0

    def test_added_shard_receives_replicated_copy(self):
        registry = ShardedModelRegistry(n_shards=2)
        registry.register_replicated("hot", Model(1.0))
        registry.register_replicated("hot", Model(2.0), promote=True)
        registry.add_shard("late")
        late = registry.shard("late")
        assert late.active("hot").value == 2.0
        assert late.versions("hot") == [1, 2]

    def test_removing_a_shard_keeps_replicated_name_available(self):
        registry = ShardedModelRegistry(n_shards=3)
        registry.register_replicated("hot", Model(4.0))
        moved = registry.remove_shard(registry.shard_ids()[0])
        assert "hot" not in moved  # replicas are dropped, not migrated
        assert registry.active("hot").value == 4.0
        assert all("hot" in registry.shard(s) for s in registry.shard_ids())

    def test_shard_routed_name_cannot_become_replicated(self):
        registry = ShardedModelRegistry(n_shards=2)
        registry.register("m", Model())
        with pytest.raises(ServingError, match="cannot become"):
            registry.register_replicated("m", Model())
