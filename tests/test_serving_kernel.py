"""Unit tests for the sans-I/O serving pipeline kernel.

Every test drives :class:`PipelineKernel` with a virtual clock — no
threads, no sleeps — and asserts on the returned action lists.  The
cross-implementation behavior (kernel vs naive-loop oracle, kernel vs the
real I/O fronts) lives in ``test_kernel_differential.py``; this file pins
each lifecycle rule in isolation.
"""

import pytest
from oracle import make_lookup_pool

from repro.exceptions import DeadlineExceededError, InvalidParameterError, ServingError
from repro.serving.cache import workload_signature
from repro.serving.kernel import (
    SHED_MESSAGES,
    BatchDone,
    BatchFailed,
    CacheInvalidate,
    CacheWrite,
    Close,
    Complete,
    Fail,
    FlushBatch,
    ObserveBatch,
    ObserveQueueDepth,
    PipelineKernel,
    ServerConfig,
    Shed,
    Submit,
    SyncVersion,
    Tick,
    apply_actions,
    split_expired,
)

POOL = make_lookup_pool(6)


def only(actions, kind):
    return [action for action in actions if isinstance(action, kind)]


def one(actions, kind):
    matches = only(actions, kind)
    assert len(matches) == 1, f"expected exactly one {kind.__name__}, got {actions}"
    return matches[0]


def make_kernel(**overrides):
    defaults = dict(max_batch_size=4, max_wait_s=0.01, cache_entries=8)
    defaults.update(overrides)
    return PipelineKernel(ServerConfig(**defaults))


def run_batch(kernel, flush, values, *, started_at, now=None):
    return kernel.batch_done(flush.batch_id, started_at, values, now if now is not None else started_at)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_batch_size": 0},
            {"max_wait_s": -0.1},
            {"cache_entries": 0},
            {"cache_ttl_s": 0.0},
            {"stream_window": 0},
            {"max_queue_depth": 0},
            {"tenant_weights": {"": 1}},
            {"tenant_weights": {"a": 0}},
            {"tenant_weights": {"a": True}},
            {"tenant_max_inflight": {"a": "2"}},
            {"tenant_max_inflight": [("a", 1), ("a", 2)]},
        ],
    )
    def test_bad_knobs_raise(self, overrides):
        with pytest.raises(InvalidParameterError):
            ServerConfig(**overrides)

    def test_bad_concurrency_raises(self):
        with pytest.raises(InvalidParameterError):
            PipelineKernel(ServerConfig(), max_concurrent_batches=0)

    def test_quota_mappings_normalize_to_sorted_pairs(self):
        config = ServerConfig(
            tenant_weights={"b": 1, "a": 3}, tenant_max_inflight=[("x", 2)]
        )
        assert config.tenant_weights == (("a", 3), ("b", 1))
        assert config.tenant_max_inflight == (("x", 2),)
        assert config.weight_of("a") == 3
        assert config.weight_of("unlisted") == 1
        assert config.inflight_cap("x") == 2
        assert config.inflight_cap("unlisted") is None

    def test_empty_quota_mappings_mean_feature_off(self):
        config = ServerConfig(tenant_weights={}, tenant_max_inflight=())
        assert config.tenant_weights is None
        assert config.tenant_max_inflight is None


class TestEventDispatch:
    def test_handle_routes_every_event_type(self):
        kernel = make_kernel(enable_batching=False)
        actions = kernel.handle(Submit(1, POOL[0], now=1.0))
        flush = one(actions, FlushBatch)
        kernel.handle(Tick(1.1))
        kernel.handle(SyncVersion(1, 1.2))
        kernel.handle(BatchDone(flush.batch_id, 1.3, [5.0], 1.3))
        actions = kernel.handle(Submit(2, POOL[1], now=1.4, use_cache=False))
        flush = one(actions, FlushBatch)
        kernel.handle(BatchFailed(flush.batch_id, 1.5, RuntimeError("boom"), 1.5))
        kernel.handle(Close(1.6))
        with pytest.raises(InvalidParameterError, match="unknown kernel event"):
            kernel.handle(object())

    def test_submit_after_close_raises(self):
        kernel = make_kernel()
        kernel.close(1.0)
        with pytest.raises(ServingError, match="closed"):
            kernel.submit(1, POOL[0], now=1.1)


class TestCacheTier:
    def test_miss_then_write_through_then_hit(self):
        kernel = make_kernel(max_wait_s=0.0)
        actions = kernel.submit(1, POOL[0], now=1.0)
        flush = one(actions, FlushBatch)
        actions = run_batch(kernel, flush, [42.0], started_at=1.01)
        write = one(actions, CacheWrite)
        assert write.key == workload_signature(POOL[0])
        assert write.value == 42.0
        actions = kernel.submit(2, POOL[0], now=1.2)
        done = one(actions, Complete)
        assert done == Complete(2, 42.0, cache_hit=True, arrival=1.2, late=False)

    def test_expired_cache_hit_is_late_not_shed(self):
        kernel = make_kernel(max_wait_s=0.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        run_batch(kernel, flush, [42.0], started_at=1.01)
        actions = kernel.submit(2, POOL[0], now=2.0, deadline_at=1.5)
        done = one(actions, Complete)
        assert done.cache_hit and done.late
        assert only(actions, Shed) == []
        assert kernel.batcher_stats().shed_requests == 0

    def test_bypass_skips_read_and_attach_but_populates(self):
        kernel = make_kernel(max_wait_s=0.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        run_batch(kernel, flush, [42.0], started_at=1.01)
        # BYPASS ignores the cached 42.0 and goes to the model again...
        actions = kernel.submit(2, POOL[0], now=1.1, use_cache=False)
        flush = one(actions, FlushBatch)
        actions = run_batch(kernel, flush, [43.0], started_at=1.2)
        assert one(actions, CacheWrite).value == 43.0
        # ... and its answer replaced the cached value for later readers.
        assert one(kernel.submit(3, POOL[0], now=1.3), Complete).value == 43.0

    def test_cache_disabled_no_stats_no_coalescing(self):
        kernel = make_kernel(enable_cache=False, max_wait_s=10.0)
        kernel.submit(1, POOL[0], now=1.0)
        kernel.submit(2, POOL[0], now=1.0)
        assert kernel.cache_stats() is None
        assert kernel.coalesced_requests == 0
        assert kernel.pending_count() == 2

    def test_cache_stats_counters(self):
        kernel = make_kernel(max_wait_s=0.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        run_batch(kernel, flush, [42.0], started_at=1.01)
        kernel.submit(2, POOL[0], now=1.1)
        stats = kernel.cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)


class TestSingleflight:
    def test_followers_attach_and_complete_as_hits(self):
        kernel = make_kernel(max_wait_s=10.0)
        kernel.submit(1, POOL[0], now=1.0)
        assert kernel.submit(2, POOL[0], now=1.1) == []  # attached, no actions
        assert kernel.submit(3, POOL[0], now=1.2, deadline_at=9.0) == []
        assert kernel.coalesced_requests == 2
        flush = one(kernel.close(1.3), FlushBatch)
        actions = run_batch(kernel, flush, [7.0], started_at=1.4)
        completes = only(actions, Complete)
        assert [c.rid for c in completes] == [1, 2, 3]
        assert [c.cache_hit for c in completes] == [False, True, True]

    def test_deadline_requests_never_lead(self):
        kernel = make_kernel(max_wait_s=10.0)
        kernel.submit(1, POOL[0], now=1.0, deadline_at=50.0)
        # Not registered as leader: an identical deadline-free submit starts
        # its own pipeline entry instead of attaching.
        kernel.submit(2, POOL[0], now=1.1)
        assert kernel.coalesced_requests == 0
        assert kernel.pending_count() == 2

    def test_follower_failure_is_error_not_shed(self):
        kernel = make_kernel(max_wait_s=10.0)
        kernel.submit(1, POOL[0], now=1.0)
        kernel.submit(2, POOL[0], now=1.0)
        flush = one(kernel.close(1.1), FlushBatch)
        actions = kernel.batch_failed(
            flush.batch_id, 1.2, DeadlineExceededError("model-side expiry"), 1.2
        )
        fails = only(actions, Fail)
        assert (fails[0].rid, fails[0].shed) == (1, True)
        assert (fails[1].rid, fails[1].shed) == (2, False)


class TestDeadlines:
    def test_admission_shed_not_counted_by_batcher(self):
        kernel = make_kernel()
        actions = kernel.submit(1, POOL[0], now=2.0, deadline_at=1.5)
        assert one(actions, Shed).stage == "admission"
        assert kernel.batcher_stats().shed_requests == 0
        assert kernel.batcher_stats().requests == 0

    def test_queue_shed_on_any_event(self):
        # The deadline sits beyond the batch window, so the request stays
        # queued (no wait clamp) until time passes it.
        kernel = make_kernel(max_wait_s=0.01)
        kernel.submit(1, POOL[0], now=1.0, deadline_at=1.5)
        actions = kernel.tick(2.0)
        assert one(actions, Shed) == Shed(1, "queue")
        assert kernel.batcher_stats().shed_requests == 1
        assert kernel.pending_count() == 0

    def test_execution_shed_recomputed_at_started_at(self):
        kernel = make_kernel(max_wait_s=0.0)
        actions = kernel.submit(1, POOL[0], now=1.0, deadline_at=1.5)
        flush = one(actions, FlushBatch)
        kernel.submit(2, POOL[1], now=1.0, deadline_at=1.8)
        # The second batch only starts executing after rid 2's expiry, so
        # the driver's split_expired leaves no live entries (values == []).
        flush2 = one(kernel.batch_done(flush.batch_id, 1.01, [5.0], 1.01), FlushBatch)
        actions = kernel.batch_done(flush2.batch_id, 2.0, [], 2.1)
        assert one(actions, Shed) == Shed(2, "execution")
        assert kernel.batcher_stats().shed_requests == 1

    def test_all_expired_batch_counts_no_batch(self):
        kernel = make_kernel(max_wait_s=0.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0, deadline_at=1.5), FlushBatch)
        actions = kernel.batch_done(flush.batch_id, 2.0, [], 2.0)
        assert only(actions, ObserveBatch) == []
        assert kernel.batcher_stats().batches == 0

    def test_late_batched_completion_is_late(self):
        kernel = make_kernel(max_wait_s=0.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0, deadline_at=1.5), FlushBatch)
        # Started before expiry (so it is live), finished after.
        actions = kernel.batch_done(flush.batch_id, 1.2, [5.0], 3.0)
        assert one(actions, Complete).late is True


class TestBatching:
    def test_window_flush_and_next_wakeup(self):
        kernel = make_kernel(max_wait_s=0.01)
        kernel.submit(1, POOL[0], now=1.0)
        assert kernel.next_wakeup() == pytest.approx(1.01)
        assert kernel.tick(1.005) == []
        actions = kernel.tick(1.011)
        assert one(actions, FlushBatch).reason == "deadline"

    def test_size_flush(self):
        kernel = make_kernel(max_batch_size=2, max_wait_s=10.0)
        kernel.submit(1, POOL[0], now=1.0)
        actions = kernel.submit(2, POOL[1], now=1.0)
        flush = one(actions, FlushBatch)
        assert flush.reason == "size" and len(flush.entries) == 2
        run_batch(kernel, flush, [1.0, 2.0], started_at=1.1)
        stats = kernel.batcher_stats()
        assert (stats.batches, stats.size_flushes, stats.max_batch_size_seen) == (1, 1, 2)

    def test_wait_clamp_on_inside_window_deadline(self):
        kernel = make_kernel(max_wait_s=0.01)
        actions = kernel.submit(1, POOL[0], now=1.0, deadline_at=1.005)
        assert one(actions, FlushBatch).reason == "deadline"

    def test_edf_cut_takes_tightest_deadlines_first(self):
        kernel = make_kernel(max_batch_size=2, max_wait_s=0.0, enable_cache=False)
        # Occupy the execution slot so deadline work piles up behind it.
        first = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        kernel.submit(2, POOL[1], now=1.0, deadline_at=9.0)
        kernel.submit(3, POOL[2], now=1.0, deadline_at=5.0)
        kernel.submit(4, POOL[3], now=1.0, deadline_at=7.0)
        actions = run_batch(kernel, first, [1.0], started_at=1.1)
        flush = one(actions, FlushBatch)
        assert [entry.rid for entry in flush.entries] == [3, 4]
        assert kernel.pending_count() == 1  # the loosest deadline waits

    def test_capacity_gates_due_flushes_until_batch_done(self):
        kernel = make_kernel(max_batch_size=2, max_wait_s=0.0)
        first = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        # Slot busy: further due work queues instead of flushing.
        assert only(kernel.submit(2, POOL[1], now=1.0), FlushBatch) == []
        assert only(kernel.submit(3, POOL[2], now=1.0), FlushBatch) == []
        assert kernel.next_wakeup() is None  # no timer can help a busy slot
        assert kernel.executing_count() == 1 and kernel.pending_count() == 2
        actions = run_batch(kernel, first, [1.0], started_at=1.1)
        second = one(actions, FlushBatch)
        assert [entry.rid for entry in second.entries] == [2, 3]

    def test_queue_depth_observed_per_admit(self):
        kernel = make_kernel(max_wait_s=10.0)
        assert one(kernel.submit(1, POOL[0], now=1.0), ObserveQueueDepth).depth == 1
        assert one(kernel.submit(2, POOL[1], now=1.0), ObserveQueueDepth).depth == 2

    def test_non_batching_flushes_singletons_immediately(self):
        kernel = make_kernel(enable_batching=False)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        assert flush.reason == "size" and len(flush.entries) == 1
        assert kernel.next_wakeup() is None
        run_batch(kernel, flush, [5.0], started_at=1.1)
        assert kernel.idle()

    def test_next_wakeup_none_when_nothing_pending(self):
        kernel = make_kernel()
        assert kernel.next_wakeup() is None

    def test_freed_slot_immediately_flushes_due_singleton(self):
        kernel = make_kernel(max_batch_size=1, max_wait_s=10.0, enable_cache=False)
        first = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        kernel.submit(2, POOL[1], now=1.0)  # due (size) but slot is busy
        second = one(run_batch(kernel, first, [1.0], started_at=1.5), FlushBatch)
        assert [entry.rid for entry in second.entries] == [2]
        assert kernel.idle() is False  # the second batch is now executing


class TestBatchCompletion:
    def test_values_mismatch_fails_whole_batch(self):
        kernel = make_kernel(max_wait_s=0.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        actions = kernel.batch_done(flush.batch_id, 1.1, [1.0, 2.0], 1.1)
        fail = one(actions, Fail)
        assert isinstance(fail.error, ServingError) and not fail.shed
        # The mismatch still counts as an executed batch.
        assert kernel.batcher_stats().batches == 1

    def test_batch_failed_forwards_error(self):
        kernel = make_kernel(max_wait_s=0.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        boom = RuntimeError("boom")
        fail = one(kernel.batch_failed(flush.batch_id, 1.1, boom, 1.1), Fail)
        assert fail.error is boom and not fail.shed

    def test_deadline_error_from_model_counts_as_shed(self):
        kernel = make_kernel(max_wait_s=0.0, enable_cache=False)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        fail = one(
            kernel.batch_failed(flush.batch_id, 1.1, DeadlineExceededError("x"), 1.1), Fail
        )
        assert fail.shed is True

    def test_unknown_batch_id_raises(self):
        kernel = make_kernel()
        with pytest.raises(ServingError, match="unknown batch id"):
            kernel.batch_done(99, 1.0, [], 1.0)


class TestHotSwap:
    def test_first_resolution_is_not_a_swap(self):
        kernel = make_kernel()
        assert only(kernel.sync_version(3, 1.0), CacheInvalidate) == []
        assert kernel.version == 3 and kernel.generation == 0

    def test_swap_invalidates_cache_and_gates_write_back(self):
        kernel = make_kernel(max_wait_s=0.0)
        kernel.sync_version(1, 1.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        # Swap while the batch is still executing...
        invalidate = one(kernel.sync_version(2, 1.05), CacheInvalidate)
        assert invalidate.generation == 1 and kernel.generation == 1
        # ... so its completion must not repopulate the fresh cache.
        actions = kernel.batch_done(flush.batch_id, 1.1, [42.0], 1.1)
        assert only(actions, CacheWrite) == []
        assert one(actions, Complete).value == 42.0
        assert only(kernel.submit(2, POOL[0], now=1.2), Complete) == []  # miss

    def test_swap_clears_singleflight_but_keeps_followers(self):
        kernel = make_kernel(max_wait_s=0.0)
        kernel.sync_version(1, 1.0)
        flush = one(kernel.submit(1, POOL[0], now=1.0), FlushBatch)
        kernel.submit(2, POOL[0], now=1.01)  # follower on the pre-swap leader
        kernel.sync_version(2, 1.05)
        # Post-swap identical request must NOT attach to pre-swap work.
        assert kernel.submit(3, POOL[0], now=1.06) != []
        assert kernel.coalesced_requests == 1
        # The already-attached follower still rides the old leader.
        completes = only(kernel.batch_done(flush.batch_id, 1.1, [42.0], 1.1), Complete)
        assert [c.rid for c in completes] == [1, 2]

    def test_resync_same_version_is_noop(self):
        kernel = make_kernel()
        kernel.sync_version(1, 1.0)
        assert kernel.sync_version(1, 1.1) == []
        assert kernel.generation == 0


class TestClose:
    def test_close_flushes_pending_as_close_reason(self):
        kernel = make_kernel(max_wait_s=10.0)
        kernel.submit(1, POOL[0], now=1.0)
        kernel.submit(2, POOL[1], now=1.0)
        flush = one(kernel.close(1.1), FlushBatch)
        assert flush.reason == "close"
        run_batch(kernel, flush, [1.0, 2.0], started_at=1.2)
        assert kernel.idle()
        assert kernel.batcher_stats().close_flushes == 1


class TestHelpers:
    def test_split_expired_partitions_in_order(self):
        class E:
            def __init__(self, deadline_at):
                self.deadline_at = deadline_at

        entries = [E(None), E(1.0), E(3.0), E(2.0)]
        live, expired = split_expired(entries, 2.0)
        assert [e.deadline_at for e in live] == [None, 3.0]
        assert [e.deadline_at for e in expired] == [1.0, 2.0]

    def test_queue_bound_never_evicts_a_coalesced_lead(self):
        """Entries carrying followers are not eviction candidates.

        Shedding a lead would orphan every follower attached to it, so the
        victim search skips them: with the queue at depth, an equal-priority
        newcomer is rejected (it loses the seq tie), and a higher-priority
        newcomer evicts the worst *follower-free* entry instead.
        """
        kernel = make_kernel(max_queue_depth=2, max_wait_s=10.0)
        kernel.submit(0, POOL[0], now=0.0)
        one(kernel.tick(10.0), FlushBatch)  # window expiry: the slot is busy
        kernel.submit(1, POOL[1], now=20.0)
        kernel.submit(2, POOL[1], now=20.0)  # coalesces onto rid 1's entry
        assert kernel.coalesced_requests == 1
        kernel.submit(3, POOL[2], now=20.0)

        # Queue at depth, equal priority: the newcomer is the scheduling-worst
        # candidate (newest seq), so it is the one rejected.
        shed = one(kernel.submit(4, POOL[3], now=20.0), Shed)
        assert (shed.rid, shed.stage, shed.reason) == (4, "admission", "queue_full")

        # A higher-priority newcomer evicts the worst follower-free entry —
        # rid 3, never the older rid 1 that holds a follower.
        shed = one(kernel.submit(5, POOL[4], now=20.0, priority=1), Shed)
        assert (shed.rid, shed.stage, shed.reason) == (3, "queue", "priority_evict")
        assert [entry.rid for entry in kernel._pending] == [1, 5]

    def test_shed_messages_cover_every_stage_and_reason(self):
        assert set(SHED_MESSAGES) == {
            "admission",
            "queue",
            "execution",
            "queue_full",
            "priority_evict",
        }


class FakeTelemetry:
    def __init__(self):
        self.calls = []

    def record(self, latency_s, cache_hit=False):
        self.calls.append(("record", round(latency_s, 6), cache_hit))

    def record_error(self):
        self.calls.append(("error",))

    def record_deadline_miss(self, shed=False):
        self.calls.append(("miss", shed))

    def observe_batch(self, size):
        self.calls.append(("batch", size))

    def observe_queue_depth(self, depth):
        self.calls.append(("depth", depth))


class TestApplyActions:
    def test_translates_every_action_kind(self):
        telemetry = FakeTelemetry()
        completed, failed, flushed = [], [], []
        error = RuntimeError("boom")
        actions = [
            Complete(1, 5.0, cache_hit=True, arrival=9.0, late=False),
            Complete(2, 5.0, cache_hit=False, arrival=9.5, late=True),
            Shed(3, "queue"),
            Fail(4, DeadlineExceededError("x"), shed=True),
            Fail(5, error, shed=False),
            FlushBatch(1, (), "size"),
            CacheWrite("k", 5.0),
            CacheInvalidate(1),
            ObserveBatch(3),
            ObserveQueueDepth(7),
        ]
        apply_actions(
            actions,
            telemetry=telemetry,
            complete=lambda action: completed.append(action.rid),
            fail=lambda rid, err: failed.append((rid, err)),
            flush=lambda action: flushed.append(action.batch_id),
            clock=lambda: 10.0,
        )
        assert completed == [1, 2]
        assert [rid for rid, _ in failed] == [3, 4, 5]
        shed_error = failed[0][1]
        assert isinstance(shed_error, DeadlineExceededError)
        assert str(shed_error) == SHED_MESSAGES["queue"]
        assert failed[2][1] is error
        assert flushed == [1]
        assert telemetry.calls == [
            ("record", 1.0, True),
            ("miss", False),  # late completion: miss, not shed
            ("record", 0.5, False),
            ("miss", True),  # queue shed
            ("miss", True),  # model-path deadline error
            ("error",),  # real model error
            ("batch", 3),
            ("depth", 7),
        ]

    def test_overload_sheds_carry_their_reason_into_telemetry(self):
        """``queue_full`` / ``priority_evict`` sheds pass their reason through.

        Deadline sheds deliberately omit the kwarg (so duck-typed telemetry
        doubles without the parameter keep working — the test above proves
        it); overload sheds must label both the counter and the error.
        """

        class ReasonTelemetry(FakeTelemetry):
            def record_deadline_miss(self, shed=False, tenant=None, reason="deadline"):
                self.calls.append(("miss", shed, tenant, reason))

        telemetry = ReasonTelemetry()
        failed = []
        apply_actions(
            [Shed(3, "admission", "queue_full"), Shed(4, "queue", "priority_evict")],
            telemetry=telemetry,
            complete=lambda action: None,
            fail=lambda rid, err: failed.append((rid, err)),
            flush=lambda action: None,
            tenant_of={3: "a"}.get,
        )
        assert telemetry.calls == [
            ("miss", True, "a", "queue_full"),
            ("miss", True, None, "priority_evict"),
        ]
        assert [str(err) for _, err in failed] == [
            SHED_MESSAGES["queue_full"],
            SHED_MESSAGES["priority_evict"],
        ]
        assert all(isinstance(err, DeadlineExceededError) for _, err in failed)
