"""Tests for the concurrent-execution simulator."""

import pytest

from repro.core.workload import make_workloads
from repro.exceptions import InvalidParameterError
from repro.integration.predictors import ConstantMemoryPredictor, OracleMemoryPredictor
from repro.integration.simulation import (
    ConcurrentExecutionSimulator,
    query_work_units,
)


def _batches(dataset, n=10):
    return make_workloads(dataset.test_records, 10, seed=7)[:n]


class TestQueryWorkUnits:
    def test_positive_and_deterministic(self, tpcc_small):
        record = tpcc_small.test_records[0]
        assert query_work_units(record) > 0.0
        assert query_work_units(record) == query_work_units(record)

    def test_bigger_plans_do_more_work(self, tpcds_small, tpcc_small):
        analytic = max(query_work_units(r) for r in tpcds_small.test_records[:50])
        transactional = min(query_work_units(r) for r in tpcc_small.test_records[:50])
        assert analytic > transactional


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            ConcurrentExecutionSimulator(0.0)
        with pytest.raises(InvalidParameterError):
            ConcurrentExecutionSimulator(100.0, spill_penalty=0.5)
        with pytest.raises(InvalidParameterError):
            ConcurrentExecutionSimulator(100.0, work_rate=0.0)

    def test_empty_batches_rejected(self):
        simulator = ConcurrentExecutionSimulator(100.0)
        with pytest.raises(InvalidParameterError):
            simulator.run([], OracleMemoryPredictor())


class TestSimulation:
    def test_all_work_completes(self, tpcc_small):
        batches = _batches(tpcc_small)
        simulator = ConcurrentExecutionSimulator(60.0)
        report = simulator.run(batches, OracleMemoryPredictor())
        assert report.makespan > 0.0
        assert report.n_queries == sum(len(b) for b in batches)
        assert len(report.query_latencies) == report.n_queries
        assert report.mean_concurrency > 0.0

    def test_oracle_admission_never_overcommits(self, tpcc_small):
        batches = _batches(tpcc_small)
        pool = 2.0 * max(b.actual_memory_mb for b in batches)
        report = ConcurrentExecutionSimulator(pool).run(batches, OracleMemoryPredictor())
        assert report.overcommitted_time == 0.0
        assert report.peak_memory_mb <= pool + 1e-9

    def test_optimistic_admission_overcommits_and_spills(self, tpcds_small):
        batches = _batches(tpcds_small, n=8)
        pool = 1.2 * max(b.actual_memory_mb for b in batches)
        simulator = ConcurrentExecutionSimulator(pool, spill_penalty=3.0)
        oracle = simulator.run(batches, OracleMemoryPredictor())
        optimist = simulator.run(batches, ConstantMemoryPredictor(0.0))
        # Admitting everything at once holds more memory than the pool ...
        assert optimist.peak_memory_mb > pool
        assert optimist.overcommit_share > 0.0
        # ... while the oracle-driven run stays within it.
        assert oracle.peak_memory_mb <= pool + 1e-9

    def test_spill_penalty_slows_the_overcommitted_run(self, tpcds_small):
        batches = _batches(tpcds_small, n=8)
        pool = 1.2 * max(b.actual_memory_mb for b in batches)
        gentle = ConcurrentExecutionSimulator(pool, spill_penalty=1.0)
        harsh = ConcurrentExecutionSimulator(pool, spill_penalty=5.0)
        optimist = ConstantMemoryPredictor(0.0)
        assert (
            harsh.run(batches, optimist).makespan
            > gentle.run(batches, optimist).makespan
        )

    def test_larger_pool_does_not_hurt_makespan(self, tpcds_small):
        batches = _batches(tpcds_small, n=8)
        small_pool = 1.5 * max(b.actual_memory_mb for b in batches)
        oracle = OracleMemoryPredictor()
        small = ConcurrentExecutionSimulator(small_pool).run(batches, oracle)
        large = ConcurrentExecutionSimulator(small_pool * 4).run(batches, oracle)
        assert large.makespan <= small.makespan + 1e-6

    def test_compare_returns_one_report_per_predictor(self, tpcc_small):
        batches = _batches(tpcc_small, n=6)
        simulator = ConcurrentExecutionSimulator(50.0)
        reports = simulator.compare(
            batches,
            {"oracle": OracleMemoryPredictor(), "constant": ConstantMemoryPredictor(5.0)},
        )
        assert set(reports) == {"oracle", "constant"}
        for report in reports.values():
            assert set(report.summary()) == {
                "makespan",
                "overcommit_share",
                "peak_memory_mb",
                "mean_concurrency",
                "mean_latency",
                "spilled_queries",
            }
