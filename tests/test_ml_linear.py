"""Tests for linear regression models (OLS and Ridge)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.linear import LinearRegression, Ridge


class TestLinearRegression:
    def test_recovers_coefficients(self, linear_problem):
        X, y, coef = linear_problem
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, coef, atol=0.05)
        assert model.intercept_ == pytest.approx(1.5, abs=0.05)

    def test_without_intercept(self, rng):
        X = rng.normal(size=(100, 2))
        y = X @ np.array([1.0, -2.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert np.allclose(model.coef_, [1.0, -2.0], atol=1e-8)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict([[1.0]])

    def test_score_on_training_data_high(self, linear_problem):
        X, y, _ = linear_problem
        assert LinearRegression().fit(X, y).score(X, y) > 0.99


class TestRidge:
    def test_negative_alpha_rejected(self):
        with pytest.raises(InvalidParameterError):
            Ridge(alpha=-1.0)

    def test_matches_ols_at_zero_alpha(self, linear_problem):
        X, y, _ = linear_problem
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_shrinkage_increases_with_alpha(self, linear_problem):
        X, y, _ = linear_problem
        small = Ridge(alpha=0.1).fit(X, y)
        large = Ridge(alpha=1e4).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalized(self, rng):
        # A large constant offset must survive heavy regularization.
        X = rng.normal(size=(200, 2))
        y = X @ np.array([0.5, 0.5]) + 1000.0
        model = Ridge(alpha=1e3).fit(X, y)
        assert model.predict(X).mean() == pytest.approx(1000.0, rel=0.01)

    def test_collinear_features_are_handled(self, rng):
        x = rng.normal(size=200)
        X = np.column_stack([x, x])  # perfectly collinear
        y = 2.0 * x + rng.normal(0, 0.01, 200)
        model = Ridge(alpha=1.0).fit(X, y)
        predictions = model.predict(X)
        assert np.corrcoef(predictions, y)[0, 1] > 0.99

    def test_prediction_shape(self, linear_problem):
        X, y, _ = linear_problem
        model = Ridge().fit(X, y)
        assert model.predict(X[:7]).shape == (7,)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            Ridge().predict([[0.0]])

    def test_clone_preserves_alpha(self):
        assert Ridge(alpha=3.3).clone().alpha == 3.3
