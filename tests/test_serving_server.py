"""Tests for the prediction server, load generator and telemetry."""

import threading
import time

import numpy as np
import pytest
from oracle import CountingPredictor, GatedLookupPredictor, make_lookup_pool

from repro.api import CachePolicy, PredictionRequest
from repro.core.workload import Workload
from repro.exceptions import DeadlineExceededError, InvalidParameterError, ServingError
from repro.integration.admission import AdmissionController
from repro.integration.predictors import ConstantMemoryPredictor
from repro.integration.scheduler import RoundScheduler
from repro.serving import (
    LoadGenerator,
    ModelRegistry,
    PredictionServer,
    ServerConfig,
    ServingTelemetry,
)


@pytest.fixture(scope="module")
def workload_pool(tpcds_small):
    from repro.core.workload import make_workloads

    return make_workloads(tpcds_small.test_records, 10, seed=3)


class TestPredict:
    def test_single_prediction(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(48.0)) as server:
            assert server.predict_workload(workload_pool[0]) == 48.0

    def test_accepts_plain_record_sequence(self, tpcds_small):
        with PredictionServer(ConstantMemoryPredictor(48.0)) as server:
            assert server.predict_workload(tpcds_small.test_records[:5]) == 48.0

    def test_batch_prediction_matches_model(self, tpcds_small, workload_pool):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:300])
        expected = model.predict(workload_pool[:8])
        with PredictionServer(model) as server:
            served = server.predict(workload_pool[:8])
        np.testing.assert_allclose(served, expected, rtol=1e-9)

    def test_predict_stream_preserves_order(self, workload_pool):
        predictor = CountingPredictor()
        with PredictionServer(predictor) as server:
            results = list(server.predict_stream(workload_pool[:12]))
        assert results == [predictor.value] * 12

    def test_submit_after_close_raises(self, workload_pool):
        server = PredictionServer(ConstantMemoryPredictor(1.0))
        server.close()
        with pytest.raises(ServingError):
            server.submit(workload_pool[0])


class TestCachingAndCoalescing:
    def test_repeated_workload_hits_cache(self, workload_pool):
        predictor = CountingPredictor()
        with PredictionServer(predictor, config=ServerConfig(max_wait_s=0.0)) as server:
            server.predict_workload(workload_pool[0])
            first_calls = predictor.calls
            for _ in range(5):
                server.predict_workload(workload_pool[0])
            assert predictor.calls == first_calls
            stats = server.cache_stats()
        assert stats.hits == 5

    def test_burst_of_identical_requests_coalesces(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(max_batch_size=64, max_wait_s=0.05)
        with PredictionServer(predictor, config=config) as server:
            futures = [server.submit(workload_pool[0]) for _ in range(20)]
            results = [f.result(timeout=5.0) for f in futures]
            assert results == [predictor.value] * 20
            # One unique signature -> at most one batched model call.
            assert sum(predictor.batch_sizes) == 1
            assert server.coalesced_requests == 19

    def test_cache_disabled_calls_model_every_time(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(enable_cache=False, enable_batching=False)
        with PredictionServer(predictor, config=config) as server:
            for _ in range(3):
                server.predict_workload(workload_pool[0])
            assert server.cache_stats() is None
        assert predictor.calls == 3

    def test_inline_mode_without_batching(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(enable_batching=False)
        with PredictionServer(predictor, config=config) as server:
            assert server.predict_workload(workload_pool[1]) == predictor.value
            assert server.batcher_stats() is None


class SlowPredictor:
    """Constant predictor whose every model call takes ``delay_s`` seconds."""

    def __init__(self, value: float = 32.0, delay_s: float = 0.2) -> None:
        self.value = value
        self.delay_s = delay_s
        self.batches: list[int] = []
        self._lock = threading.Lock()

    def predict_workload(self, queries) -> float:
        time.sleep(self.delay_s)
        with self._lock:
            self.batches.append(1)
        return self.value

    def predict(self, workloads):
        time.sleep(self.delay_s)
        with self._lock:
            self.batches.append(len(workloads))
        return np.full(len(workloads), self.value)


class TestServerConfigValidation:
    """Every knob fails at construction, not deep in the batcher or cache."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_batch_size": -3},
            {"max_wait_s": -0.001},
            {"cache_entries": 0},
            {"cache_entries": -10},
            {"cache_ttl_s": 0.0},
            {"cache_ttl_s": -1.0},
            {"stream_window": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            ServerConfig(**kwargs)

    def test_knobs_validated_even_when_feature_disabled(self):
        # A negative cache size is a bug in the caller's config whether or
        # not the cache is switched on for this server.
        with pytest.raises(InvalidParameterError):
            ServerConfig(cache_entries=-1, enable_cache=False)

    def test_valid_config_accepted(self):
        config = ServerConfig(max_batch_size=1, max_wait_s=0.0, cache_entries=1, cache_ttl_s=0.5)
        assert config.cache_ttl_s == 0.5


class TestDeadlines:
    def test_expired_request_is_shed_before_the_model(self, workload_pool):
        predictor = CountingPredictor()
        with PredictionServer(predictor) as server:
            with pytest.raises(DeadlineExceededError):
                server.predict(
                    PredictionRequest.of(
                        workload_pool[0], deadline_s=1e-9, cache_policy=CachePolicy.BYPASS
                    )
                )
            report = server.snapshot()
        assert predictor.calls == 0  # never occupied a batch slot
        assert report.shed_requests == 1
        assert report.deadline_misses == 1
        assert report.n_errors == 0  # shedding is not a server failure

    def test_generous_deadline_answers_normally(self, workload_pool):
        predictor = CountingPredictor()
        with PredictionServer(predictor) as server:
            result = server.predict(PredictionRequest.of(workload_pool[0], deadline_s=30.0))
            assert result.memory_mb == predictor.value
            report = server.snapshot()
        assert report.deadline_misses == 0
        assert report.shed_requests == 0

    def test_queued_request_expiring_behind_a_slow_batch_is_shed(self, workload_pool):
        predictor = SlowPredictor(delay_s=0.3)
        config = ServerConfig(max_wait_s=0.0)
        with PredictionServer(predictor, config=config) as server:
            blocker = server.submit(workload_pool[0])
            time.sleep(0.05)  # let the first batch occupy the worker
            doomed = server.submit_request(
                PredictionRequest.of(workload_pool[1], deadline_s=0.1)
            )
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5.0)
            assert blocker.result(timeout=5.0) == predictor.value
            assert server.batcher_stats().shed_requests == 1
            report = server.snapshot()
        # Only the blocker's batch reached the model.
        assert predictor.batches == [1]
        assert report.shed_requests == 1

    def test_predict_batch_deadline_clock_starts_at_submission(self, workload_pool):
        """Regression: request *i*'s budget must not grow by the time spent
        awaiting requests before it in the batch loop."""
        predictor = SlowPredictor(delay_s=0.25)
        config = ServerConfig(max_batch_size=1, max_wait_s=0.0, enable_cache=False)
        with PredictionServer(predictor, config=config) as server:
            requests = [
                PredictionRequest.of(workload_pool[i], deadline_s=0.4) for i in range(3)
            ]
            # Three sequential 0.25 s batches: request 0 completes inside its
            # budget, requests 1/2 cannot — under the old per-turn clock all
            # three passed because each turn granted a fresh 0.4 s.
            with pytest.raises(DeadlineExceededError):
                server.predict_batch(requests)

    def test_late_completion_counts_as_miss_but_still_delivers(self, workload_pool):
        predictor = SlowPredictor(delay_s=0.15)
        config = ServerConfig(enable_batching=False, enable_cache=False)
        with PredictionServer(predictor, config=config) as server:
            # Inline execution starts within budget and finishes past it.
            result = server.predict(PredictionRequest.of(workload_pool[0], deadline_s=0.05))
            assert result.memory_mb == predictor.value
            report = server.snapshot()
        assert report.deadline_misses == 1
        assert report.shed_requests == 0


class TestPriorityExecution:
    def test_ready_batches_execute_priority_first(self):
        """A high-priority batch overtakes a queued low-priority backlog.

        The first batch blocks the worker; two more flush behind it — a
        priority-0 one first, then a priority-1 one.  On release the
        worker must pick the priority-1 batch before the older backlog.
        """
        model = GatedLookupPredictor()
        pool = make_lookup_pool(3)
        config = ServerConfig(max_batch_size=1, max_wait_s=0.0, enable_cache=False)
        with PredictionServer(model, config=config) as server:
            first = server.submit_request(PredictionRequest.of(pool[0]))
            assert model.started.wait(5.0)
            low = server.submit_request(PredictionRequest.of(pool[1]))
            high = server.submit_request(PredictionRequest.of(pool[2], priority=1))
            model.release.set()
            for future in (first, low, high):
                future.result(timeout=5.0)
        assert model.order == [10.0, 30.0, 20.0]


class TestHotSwap:
    def test_promotion_changes_served_model_and_clears_cache(self, workload_pool):
        registry = ModelRegistry()
        registry.register("m", ConstantMemoryPredictor(10.0))
        with PredictionServer(registry, model_name="m") as server:
            assert server.predict_workload(workload_pool[0]) == 10.0
            registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
            # Same workload: the cache must not serve the old model's answer.
            assert server.predict_workload(workload_pool[0]) == 99.0

    def test_rollback_restores_old_answers(self, workload_pool):
        registry = ModelRegistry()
        registry.register("m", ConstantMemoryPredictor(10.0))
        registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
        with PredictionServer(registry, model_name="m") as server:
            assert server.predict_workload(workload_pool[0]) == 99.0
            registry.rollback("m")
            assert server.predict_workload(workload_pool[0]) == 10.0

    def test_unknown_model_name_fails_fast(self):
        with pytest.raises(ServingError):
            PredictionServer(ModelRegistry(), model_name="missing")

    def test_post_swap_request_does_not_coalesce_onto_pre_swap_computation(
        self, workload_pool
    ):
        """Regression: promotion cleared the cache but not the singleflight
        table, so a post-swap request could attach to a pre-swap computation
        and repopulate the fresh cache with the old model's value."""
        registry = ModelRegistry()
        registry.register("m", SlowPredictor(value=10.0, delay_s=0.3))
        config = ServerConfig(max_wait_s=0.0)
        with PredictionServer(registry, model_name="m", config=config) as server:
            stale = server.submit(workload_pool[0])  # in-flight on the old model
            time.sleep(0.05)
            registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
            fresh = server.submit(workload_pool[0])
            assert fresh.result(timeout=5.0) == 99.0
            assert stale.result(timeout=5.0) == 10.0  # admitted pre-swap
            # The pre-swap computation must not have repopulated the fresh
            # cache: a repeat still sees the promoted model's answer.
            assert server.predict_workload(workload_pool[0]) == 99.0
            assert server.coalesced_requests == 0


class TestServedPredictorPath:
    """The server satisfies the integration layer's predictor protocol."""

    def test_admission_controller_accepts_server(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(40.0)) as server:
            controller = AdmissionController(server, memory_pool_mb=100.0)
            report = controller.run(workload_pool[:6])
        assert report.n_rounds == 3  # 2 x 40 MB per 100 MB round

    def test_round_scheduler_accepts_server(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(40.0)) as server:
            scheduler = RoundScheduler(server, memory_pool_mb=100.0)
            report = scheduler.schedule(workload_pool[:6])
        assert report.n_rounds == 3


class TestTelemetry:
    def test_snapshot_counts_and_percentiles(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(5.0)) as server:
            server.predict(workload_pool[:10])
            report = server.snapshot()
        assert report.n_requests == 10
        assert report.throughput_qps > 0.0
        assert report.latency_p50_ms <= report.latency_p95_ms <= report.latency_p99_ms
        rendered = report.render()
        assert "throughput" in rendered and "latency p99" in rendered

    def test_error_and_reset(self):
        telemetry = ServingTelemetry()
        telemetry.record(0.010)
        telemetry.record(0.020, cache_hit=True)
        telemetry.record_error()
        report = telemetry.snapshot()
        assert report.n_requests == 2
        assert report.n_errors == 1
        assert report.cache_hit_rate == pytest.approx(0.5)
        telemetry.reset()
        assert telemetry.snapshot().n_requests == 0

    def test_empty_snapshot_is_all_zero(self):
        report = ServingTelemetry().snapshot()
        assert report.n_requests == 0
        assert report.throughput_qps == 0.0
        assert report.latency_p99_ms == 0.0


class TestFeatureCacheTelemetry:
    """The served model's plan-feature cache surfaces through telemetry."""

    @pytest.fixture(scope="class")
    def fitted_model(self, tpcds_small):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:300])
        return model

    def test_snapshot_carries_feature_cache_fields(self, fitted_model, workload_pool):
        with PredictionServer(fitted_model) as server:
            server.predict(workload_pool[:8])
            report = server.snapshot()
        stats = fitted_model.feature_cache_stats()
        assert report.feature_cache_hits == stats.hits
        assert report.feature_cache_misses == stats.misses
        assert report.feature_cache_evictions == stats.evictions
        assert report.feature_cache_hit_rate == pytest.approx(stats.hit_rate)
        assert report.feature_cache_hits + report.feature_cache_misses > 0

    def test_to_dict_and_render_include_feature_cache(self, fitted_model, workload_pool):
        with PredictionServer(fitted_model) as server:
            server.predict(workload_pool[:4])
            report = server.snapshot()
        payload = report.to_dict()
        assert {
            "feature_cache_hits",
            "feature_cache_misses",
            "feature_cache_evictions",
            "feature_cache_hit_rate",
        } <= set(payload)
        assert "feature cache hit %" in report.render()

    def test_fields_stay_zero_without_memoized_featurizer(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            server.predict(workload_pool[:4])
            report = server.snapshot()
            assert server.feature_cache_stats() is None
        assert report.feature_cache_hits == 0
        assert report.feature_cache_misses == 0
        assert "feature cache" not in report.render()

    def test_server_feature_cache_stats_shared_with_model(self, fitted_model, workload_pool):
        with PredictionServer(fitted_model) as server:
            server.predict_workload(workload_pool[0])
            served_stats = server.feature_cache_stats()
        # Same cache instance as the model's: direct calls advance it too.
        fitted_model.predict_workload(workload_pool[0])
        direct_stats = fitted_model.feature_cache_stats()
        assert direct_stats.requests > served_stats.requests


class TestLoadGenerator:
    def test_replay_reports_throughput_and_latency(self, workload_pool):
        from repro.workloads.replay import replay_requests_from_workloads

        requests = replay_requests_from_workloads(workload_pool, 60, repeat_fraction=0.6, seed=1)
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            report = LoadGenerator(server, requests, qps=600.0, benchmark="tpcds").run()
        assert report.n_requests == 60
        assert report.n_errors == 0
        assert report.achieved_qps > 0.0
        assert 0.0 <= report.cache_hit_rate <= 1.0
        assert report.latency_p50_ms <= report.latency_p99_ms
        rendered = report.render()
        assert "offered load" in rendered and "cache hit rate" in rendered

    def test_report_json_roundtrip(self, tmp_path, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            report = LoadGenerator(server, workload_pool[:10], qps=1000.0).run()
        path = report.write_json(tmp_path / "bench.json")
        import json

        payload = json.loads(path.read_text())
        assert payload["n_requests"] == 10
        assert "latency_p95_ms" in payload

    def test_rejects_bad_parameters(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            with pytest.raises(Exception):
                LoadGenerator(server, workload_pool[:5], qps=0.0)
            with pytest.raises(Exception):
                LoadGenerator(server, [], qps=10.0)
            with pytest.raises(Exception):
                LoadGenerator(server, workload_pool[:5], qps=10.0, deadline_s=0.0)

    def test_deadline_traffic_reports_misses_not_errors(self, workload_pool):
        # Every request carries an unmeetable budget: all are shed, none
        # count as errors, and the report carries the server-side counters.
        predictor = SlowPredictor(delay_s=0.2)
        config = ServerConfig(enable_cache=False, max_wait_s=0.0)
        with PredictionServer(predictor, config=config) as server:
            report = LoadGenerator(
                server, workload_pool[:6], qps=1000.0, deadline_s=1e-9
            ).run()
        assert report.n_errors == 0
        assert report.shed_requests == 6
        assert report.deadline_misses == 6
        payload = report.to_dict()
        assert payload["deadline_misses"] == 6
        assert payload["shed_requests"] == 6
        assert "deadline misses" in report.render()

    def test_generous_deadline_traffic_reports_clean(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            report = LoadGenerator(
                server, workload_pool[:10], qps=1000.0, deadline_s=30.0
            ).run()
        assert report.n_errors == 0
        assert report.deadline_misses == 0
        assert report.shed_requests == 0
        assert "deadline misses" not in report.render()
