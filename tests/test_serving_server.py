"""Tests for the prediction server, load generator and telemetry."""

import threading

import numpy as np
import pytest

from repro.core.workload import Workload
from repro.exceptions import ServingError
from repro.integration.admission import AdmissionController
from repro.integration.predictors import ConstantMemoryPredictor
from repro.integration.scheduler import RoundScheduler
from repro.serving import (
    LoadGenerator,
    ModelRegistry,
    PredictionServer,
    ServerConfig,
    ServingTelemetry,
)


class CountingPredictor:
    """Constant predictor that counts predict calls and batch sizes."""

    def __init__(self, value: float = 32.0) -> None:
        self.value = value
        self.calls = 0
        self.batch_sizes: list[int] = []
        self._lock = threading.Lock()

    def predict_workload(self, queries) -> float:
        with self._lock:
            self.calls += 1
            self.batch_sizes.append(1)
        return self.value

    def predict(self, workloads):
        with self._lock:
            self.calls += 1
            self.batch_sizes.append(len(workloads))
        return np.full(len(workloads), self.value)


@pytest.fixture(scope="module")
def workload_pool(tpcds_small):
    from repro.core.workload import make_workloads

    return make_workloads(tpcds_small.test_records, 10, seed=3)


class TestPredict:
    def test_single_prediction(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(48.0)) as server:
            assert server.predict_workload(workload_pool[0]) == 48.0

    def test_accepts_plain_record_sequence(self, tpcds_small):
        with PredictionServer(ConstantMemoryPredictor(48.0)) as server:
            assert server.predict_workload(tpcds_small.test_records[:5]) == 48.0

    def test_batch_prediction_matches_model(self, tpcds_small, workload_pool):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:300])
        expected = model.predict(workload_pool[:8])
        with PredictionServer(model) as server:
            served = server.predict(workload_pool[:8])
        np.testing.assert_allclose(served, expected, rtol=1e-9)

    def test_predict_stream_preserves_order(self, workload_pool):
        predictor = CountingPredictor()
        with PredictionServer(predictor) as server:
            results = list(server.predict_stream(workload_pool[:12]))
        assert results == [predictor.value] * 12

    def test_submit_after_close_raises(self, workload_pool):
        server = PredictionServer(ConstantMemoryPredictor(1.0))
        server.close()
        with pytest.raises(ServingError):
            server.submit(workload_pool[0])


class TestCachingAndCoalescing:
    def test_repeated_workload_hits_cache(self, workload_pool):
        predictor = CountingPredictor()
        with PredictionServer(predictor, config=ServerConfig(max_wait_s=0.0)) as server:
            server.predict_workload(workload_pool[0])
            first_calls = predictor.calls
            for _ in range(5):
                server.predict_workload(workload_pool[0])
            assert predictor.calls == first_calls
            stats = server.cache_stats()
        assert stats.hits == 5

    def test_burst_of_identical_requests_coalesces(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(max_batch_size=64, max_wait_s=0.05)
        with PredictionServer(predictor, config=config) as server:
            futures = [server.submit(workload_pool[0]) for _ in range(20)]
            results = [f.result(timeout=5.0) for f in futures]
            assert results == [predictor.value] * 20
            # One unique signature -> at most one batched model call.
            assert sum(predictor.batch_sizes) == 1
            assert server.coalesced_requests == 19

    def test_cache_disabled_calls_model_every_time(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(enable_cache=False, enable_batching=False)
        with PredictionServer(predictor, config=config) as server:
            for _ in range(3):
                server.predict_workload(workload_pool[0])
            assert server.cache_stats() is None
        assert predictor.calls == 3

    def test_inline_mode_without_batching(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(enable_batching=False)
        with PredictionServer(predictor, config=config) as server:
            assert server.predict_workload(workload_pool[1]) == predictor.value
            assert server.batcher_stats() is None


class TestHotSwap:
    def test_promotion_changes_served_model_and_clears_cache(self, workload_pool):
        registry = ModelRegistry()
        registry.register("m", ConstantMemoryPredictor(10.0))
        with PredictionServer(registry, model_name="m") as server:
            assert server.predict_workload(workload_pool[0]) == 10.0
            registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
            # Same workload: the cache must not serve the old model's answer.
            assert server.predict_workload(workload_pool[0]) == 99.0

    def test_rollback_restores_old_answers(self, workload_pool):
        registry = ModelRegistry()
        registry.register("m", ConstantMemoryPredictor(10.0))
        registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
        with PredictionServer(registry, model_name="m") as server:
            assert server.predict_workload(workload_pool[0]) == 99.0
            registry.rollback("m")
            assert server.predict_workload(workload_pool[0]) == 10.0

    def test_unknown_model_name_fails_fast(self):
        with pytest.raises(ServingError):
            PredictionServer(ModelRegistry(), model_name="missing")


class TestServedPredictorPath:
    """The server satisfies the integration layer's predictor protocol."""

    def test_admission_controller_accepts_server(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(40.0)) as server:
            controller = AdmissionController(server, memory_pool_mb=100.0)
            report = controller.run(workload_pool[:6])
        assert report.n_rounds == 3  # 2 x 40 MB per 100 MB round

    def test_round_scheduler_accepts_server(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(40.0)) as server:
            scheduler = RoundScheduler(server, memory_pool_mb=100.0)
            report = scheduler.schedule(workload_pool[:6])
        assert report.n_rounds == 3


class TestTelemetry:
    def test_snapshot_counts_and_percentiles(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(5.0)) as server:
            server.predict(workload_pool[:10])
            report = server.snapshot()
        assert report.n_requests == 10
        assert report.throughput_qps > 0.0
        assert report.latency_p50_ms <= report.latency_p95_ms <= report.latency_p99_ms
        rendered = report.render()
        assert "throughput" in rendered and "latency p99" in rendered

    def test_error_and_reset(self):
        telemetry = ServingTelemetry()
        telemetry.record(0.010)
        telemetry.record(0.020, cache_hit=True)
        telemetry.record_error()
        report = telemetry.snapshot()
        assert report.n_requests == 2
        assert report.n_errors == 1
        assert report.cache_hit_rate == pytest.approx(0.5)
        telemetry.reset()
        assert telemetry.snapshot().n_requests == 0

    def test_empty_snapshot_is_all_zero(self):
        report = ServingTelemetry().snapshot()
        assert report.n_requests == 0
        assert report.throughput_qps == 0.0
        assert report.latency_p99_ms == 0.0


class TestFeatureCacheTelemetry:
    """The served model's plan-feature cache surfaces through telemetry."""

    @pytest.fixture(scope="class")
    def fitted_model(self, tpcds_small):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:300])
        return model

    def test_snapshot_carries_feature_cache_fields(self, fitted_model, workload_pool):
        with PredictionServer(fitted_model) as server:
            server.predict(workload_pool[:8])
            report = server.snapshot()
        stats = fitted_model.feature_cache_stats()
        assert report.feature_cache_hits == stats.hits
        assert report.feature_cache_misses == stats.misses
        assert report.feature_cache_evictions == stats.evictions
        assert report.feature_cache_hit_rate == pytest.approx(stats.hit_rate)
        assert report.feature_cache_hits + report.feature_cache_misses > 0

    def test_to_dict_and_render_include_feature_cache(self, fitted_model, workload_pool):
        with PredictionServer(fitted_model) as server:
            server.predict(workload_pool[:4])
            report = server.snapshot()
        payload = report.to_dict()
        assert {
            "feature_cache_hits",
            "feature_cache_misses",
            "feature_cache_evictions",
            "feature_cache_hit_rate",
        } <= set(payload)
        assert "feature cache hit %" in report.render()

    def test_fields_stay_zero_without_memoized_featurizer(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            server.predict(workload_pool[:4])
            report = server.snapshot()
            assert server.feature_cache_stats() is None
        assert report.feature_cache_hits == 0
        assert report.feature_cache_misses == 0
        assert "feature cache" not in report.render()

    def test_server_feature_cache_stats_shared_with_model(self, fitted_model, workload_pool):
        with PredictionServer(fitted_model) as server:
            server.predict_workload(workload_pool[0])
            served_stats = server.feature_cache_stats()
        # Same cache instance as the model's: direct calls advance it too.
        fitted_model.predict_workload(workload_pool[0])
        direct_stats = fitted_model.feature_cache_stats()
        assert direct_stats.requests > served_stats.requests


class TestLoadGenerator:
    def test_replay_reports_throughput_and_latency(self, workload_pool):
        from repro.workloads.replay import replay_requests_from_workloads

        requests = replay_requests_from_workloads(workload_pool, 60, repeat_fraction=0.6, seed=1)
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            report = LoadGenerator(server, requests, qps=600.0, benchmark="tpcds").run()
        assert report.n_requests == 60
        assert report.n_errors == 0
        assert report.achieved_qps > 0.0
        assert 0.0 <= report.cache_hit_rate <= 1.0
        assert report.latency_p50_ms <= report.latency_p99_ms
        rendered = report.render()
        assert "offered load" in rendered and "cache hit rate" in rendered

    def test_report_json_roundtrip(self, tmp_path, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            report = LoadGenerator(server, workload_pool[:10], qps=1000.0).run()
        path = report.write_json(tmp_path / "bench.json")
        import json

        payload = json.loads(path.read_text())
        assert payload["n_requests"] == 10
        assert "latency_p95_ms" in payload

    def test_rejects_bad_parameters(self, workload_pool):
        with PredictionServer(ConstantMemoryPredictor(8.0)) as server:
            with pytest.raises(Exception):
                LoadGenerator(server, workload_pool[:5], qps=0.0)
            with pytest.raises(Exception):
                LoadGenerator(server, [], qps=10.0)
