"""Tests for the SQL lexer."""

import pytest

from repro.dbms.sql.lexer import Token, tokenize
from repro.exceptions import SQLSyntaxError


class TestTokenize:
    def test_keywords_lowercased_and_tagged(self):
        tokens = tokenize("SELECT a FROM b")
        assert tokens[0] == Token("KEYWORD", "select", 0)
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "IDENT"]

    def test_numbers(self):
        tokens = tokenize("select 42 , 3.14 , -7")
        numbers = [t.text for t in tokens if t.kind == "NUMBER"]
        assert numbers == ["42", "3.14", "-7"]

    def test_string_literal_single_token(self):
        tokens = tokenize("where name = 'hello world'")
        strings = [t for t in tokens if t.kind == "STRING"]
        assert len(strings) == 1
        assert strings[0].text == "'hello world'"

    def test_operators(self):
        tokens = tokenize("a >= 1 and b <> 2 and c <= 3")
        ops = [t.text for t in tokens if t.kind == "OP"]
        assert ops == [">=", "<>", "<="]

    def test_punctuation(self):
        kinds = [t.kind for t in tokenize("count(*) , t.col ;")]
        assert kinds == ["KEYWORD", "LPAREN", "STAR", "RPAREN", "COMMA", "IDENT", "DOT", "IDENT", "SEMI"]

    def test_positions_recorded(self):
        tokens = tokenize("select  abc")
        assert tokens[1].position == 8

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select #oops")

    def test_is_keyword_property(self):
        select, ident = tokenize("select foo")
        assert select.is_keyword
        assert not ident.is_keyword

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []
