"""Tests for the LearnedWMP model (training and inference pipelines)."""

import numpy as np
import pytest

from repro.core.model import LearnedWMP
from repro.core.template_methods import PlanTemplates
from repro.core.workload import Workload, make_workloads
from repro.exceptions import InvalidParameterError, NotFittedError


@pytest.fixture(scope="module")
def fitted_model(tpcds_small):
    model = LearnedWMP(
        regressor="xgb", n_templates=15, batch_size=10, random_state=0, fast=True
    )
    model.fit(tpcds_small.train_records)
    return model


class TestTraining:
    def test_training_report_populated(self, fitted_model, tpcds_small):
        report = fitted_model.training_report_
        assert report is not None
        assert report.n_queries == len(tpcds_small.train_records)
        assert report.n_workloads == len(tpcds_small.train_records) // 10
        assert report.n_templates == 15
        assert report.total_time_s > 0.0
        assert report.regressor_time_s <= report.total_time_s

    def test_too_few_records_rejected(self, tpcds_small):
        model = LearnedWMP(batch_size=50, fast=True)
        with pytest.raises(InvalidParameterError):
            model.fit(tpcds_small.train_records[:10])

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            LearnedWMP(batch_size=0)

    def test_fit_workloads_entry_point(self, tpcds_small):
        workloads = make_workloads(tpcds_small.train_records[:200], 10, seed=0)
        model = LearnedWMP(regressor="ridge", n_templates=10, random_state=0, fast=True)
        model.fit_workloads(workloads)
        assert model.training_report_.n_workloads == len(workloads)

    def test_custom_regressor_instance(self, tpcds_small):
        from repro.ml.linear import Ridge

        model = LearnedWMP(regressor=Ridge(alpha=0.5), n_templates=10, random_state=0)
        model.fit(tpcds_small.train_records[:200])
        assert isinstance(model.regressor, Ridge)

    def test_custom_template_method_instance(self, tpcds_small):
        method = PlanTemplates(8, random_state=1)
        model = LearnedWMP(
            regressor="ridge", template_method=method, batch_size=10, random_state=0
        )
        model.fit(tpcds_small.train_records[:200])
        assert model.templates is method
        assert model.templates.k == 8


class TestInference:
    def test_histogram_shape(self, fitted_model, tpcds_small):
        histogram = fitted_model.histogram(tpcds_small.test_records[:10])
        assert histogram.shape == (15,)
        assert histogram.sum() == pytest.approx(10)

    def test_predict_workload_scalar(self, fitted_model, tpcds_small):
        prediction = fitted_model.predict_workload(tpcds_small.test_records[:10])
        assert isinstance(prediction, float)
        assert prediction > 0.0

    def test_predict_accepts_workload_object(self, fitted_model, tpcds_small):
        workload = Workload(queries=list(tpcds_small.test_records[:10]))
        assert fitted_model.predict_workload(workload) > 0.0

    def test_predict_many_workloads(self, fitted_model, tpcds_small):
        workloads = make_workloads(tpcds_small.test_records, 10, seed=0)
        predictions = fitted_model.predict(workloads)
        assert predictions.shape == (len(workloads),)
        assert np.all(predictions > 0.0)

    def test_predictions_in_plausible_range(self, fitted_model, tpcds_small):
        workloads = make_workloads(tpcds_small.test_records, 10, seed=0)
        actuals = np.array([w.actual_memory_mb for w in workloads])
        predictions = fitted_model.predict(workloads)
        assert predictions.max() < 10 * actuals.max()
        assert predictions.min() > 0.0

    def test_predict_empty_list(self, fitted_model):
        assert fitted_model.predict([]).shape == (0,)

    def test_evaluate_keys(self, fitted_model, tpcds_small):
        workloads = make_workloads(tpcds_small.test_records, 10, seed=0)
        metrics = fitted_model.evaluate(workloads)
        assert set(metrics) == {"rmse", "mape", "mae"}
        assert metrics["rmse"] > 0.0

    def test_unfitted_model_raises(self, tpcds_small):
        model = LearnedWMP(fast=True)
        with pytest.raises(NotFittedError):
            model.predict_workload(tpcds_small.test_records[:10])

    def test_learning_beats_predicting_the_mean(self, tpcds_small):
        """The fitted model must beat a constant (mean) predictor on holdout.

        The gradient-boosted variant is used because the small fixture only
        yields a few dozen training workloads and the memory labels are heavy
        tailed (range scans vary from a sliver to most of a fact table), a
        regime where a linear model's extrapolation is unreliable.
        """
        model = LearnedWMP(
            regressor="xgb", n_templates=20, batch_size=10, random_state=0, fast=True
        )
        model.fit(tpcds_small.train_records)
        train_workloads = make_workloads(tpcds_small.train_records, 10, seed=0)
        test_workloads = make_workloads(tpcds_small.test_records, 10, seed=0)
        mean_label = np.mean([w.actual_memory_mb for w in train_workloads])
        actuals = np.array([w.actual_memory_mb for w in test_workloads])
        baseline_rmse = float(np.sqrt(np.mean((actuals - mean_label) ** 2)))
        assert model.evaluate(test_workloads)["rmse"] < baseline_rmse


class TestRegressorVariants:
    @pytest.mark.parametrize("regressor", ["ridge", "dnn", "dt"])
    def test_variants_train_and_predict(self, regressor, tpcds_small):
        model = LearnedWMP(
            regressor=regressor, n_templates=10, batch_size=10, random_state=0, fast=True
        )
        model.fit(tpcds_small.train_records[:300])
        prediction = model.predict_workload(tpcds_small.test_records[:10])
        assert np.isfinite(prediction)
