"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.metrics import interquartile_range, mape, mean_absolute_error, rmse, summarize_residuals
from repro.dbms.plan.cardinality import _hash_gaussian, _hash_unit
from repro.ml.kmeans import KMeans
from repro.ml.linear import Ridge
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.text import tokenize_sql
from repro.ml.tree import DecisionTreeRegressor

# Every field (example budget, deadline, health checks, failure-seed
# printing) comes from the settings profile registered in ``conftest.py``:
# ``dev`` locally, ``ci`` under ``HYPOTHESIS_PROFILE=ci``.
_SETTINGS = settings()

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=40),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)

feature_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(8, 40), st.integers(1, 5)),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
)


class TestMetricProperties:
    @_SETTINGS
    @given(finite_arrays)
    def test_rmse_zero_iff_equal(self, values):
        assert rmse(values, values) == 0.0

    @_SETTINGS
    @given(finite_arrays, st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_rmse_at_least_mae(self, values, shift):
        predictions = values + shift
        assert rmse(values, predictions) >= mean_absolute_error(values, predictions) - 1e-9

    @_SETTINGS
    @given(finite_arrays)
    def test_rmse_symmetry(self, values):
        other = values[::-1].copy()
        assert np.isclose(rmse(values, other), rmse(other, values))

    @_SETTINGS
    @given(finite_arrays, st.floats(min_value=0.1, max_value=1000, allow_nan=False))
    def test_rmse_scales_linearly(self, values, factor):
        other = values + 1.0
        assert np.isclose(rmse(values * factor, other * factor), factor * rmse(values, other), rtol=1e-6)

    @_SETTINGS
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=40),
            elements=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        ),
        st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
    )
    def test_mape_scale_invariant(self, values, scale):
        predictions = values * 1.1
        assert np.isclose(mape(values, predictions), mape(values * scale, predictions * scale), rtol=1e-9)

    @_SETTINGS
    @given(finite_arrays)
    def test_iqr_nonnegative_and_translation_invariant(self, values):
        assert interquartile_range(values) >= 0.0
        assert np.isclose(interquartile_range(values + 17.0), interquartile_range(values))

    @_SETTINGS
    @given(finite_arrays, finite_arrays)
    def test_residual_summary_quartile_ordering(self, a, b):
        n = min(len(a), len(b))
        summary = summarize_residuals(a[:n], b[:n])
        assert summary.minimum <= summary.q1 <= summary.median <= summary.q3 <= summary.maximum
        assert summary.iqr >= 0.0


class TestScalerProperties:
    @_SETTINGS
    @given(feature_matrices)
    def test_standard_scaler_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)

    @_SETTINGS
    @given(feature_matrices)
    def test_minmax_bounds(self, X):
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() >= -1e-9
        assert scaled.max() <= 1.0 + 1e-9


class TestClusteringProperties:
    @_SETTINGS
    @given(feature_matrices, st.integers(min_value=1, max_value=5))
    def test_kmeans_labels_within_range(self, X, k):
        k = min(k, X.shape[0])
        model = KMeans(n_clusters=k, n_init=1, random_state=0).fit(X)
        assert model.labels_.min() >= 0
        assert model.labels_.max() < k
        assert model.inertia_ >= 0.0

    @_SETTINGS
    @given(feature_matrices)
    def test_kmeans_single_cluster_centroid_is_mean(self, X):
        model = KMeans(n_clusters=1, n_init=1, random_state=0).fit(X)
        assert np.allclose(model.cluster_centers_[0], X.mean(axis=0), atol=1e-6)


class TestModelProperties:
    @_SETTINGS
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(10, 60), st.integers(1, 4)),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    def test_tree_training_predictions_bounded_by_target_range(self, X):
        y = X[:, 0] * 2.0 + 1.0
        model = DecisionTreeRegressor(max_depth=4).fit(X, y)
        predictions = model.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @_SETTINGS
    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_ridge_constant_target_predicts_constant(self, constant):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 3))
        y = np.full(30, constant)
        model = Ridge(alpha=1.0).fit(X, y)
        assert np.allclose(model.predict(X), constant, atol=1e-6)


class TestHashDeterminism:
    @_SETTINGS
    @given(st.text(min_size=0, max_size=50))
    def test_hash_unit_in_unit_interval_and_stable(self, key):
        value = _hash_unit(key)
        assert 0.0 <= value < 1.0
        assert value == _hash_unit(key)

    @_SETTINGS
    @given(st.text(min_size=0, max_size=50))
    def test_hash_gaussian_bounded(self, key):
        value = _hash_gaussian(key)
        assert -15.0 < value < 15.0
        assert value == _hash_gaussian(key)


class TestServingProperties:
    """Batched / served prediction must agree with the unbatched path."""

    @_SETTINGS
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_batched_serving_equals_unbatched(self, demands, max_batch):
        """For any request mix and batch size, serving returns the same
        predictions as calling the predictor one request at a time."""
        from oracle import LookupPredictor, naive_loop_values

        from repro.core.workload import Workload
        from repro.serving import PredictionServer, ServerConfig

        workloads = [Workload(queries=[], actual_memory_mb=d) for d in demands]
        unbatched = naive_loop_values(LookupPredictor(), workloads)
        config = ServerConfig(
            max_batch_size=max_batch, max_wait_s=0.001, enable_cache=False
        )
        with PredictionServer(LookupPredictor(), config=config) as server:
            served = server.predict(workloads)
        assert np.allclose(served, unbatched)

    @_SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=6),
    )
    def test_cached_serving_equals_unbatched(self, picks, max_batch):
        """Caching + coalescing must not change any prediction, for any
        repetition pattern of a small workload pool."""
        from oracle import LookupPredictor, make_lookup_pool, naive_loop_values

        from repro.serving import PredictionServer, ServerConfig

        # Each pool entry carries a distinct query text: the cache keys on
        # query content, so distinct workloads must have distinct queries.
        pool = make_lookup_pool(6)
        requests = [pool[p] for p in picks]
        expected = naive_loop_values(LookupPredictor(), requests)
        config = ServerConfig(max_batch_size=max_batch, max_wait_s=0.001)
        with PredictionServer(LookupPredictor(), config=config) as server:
            served = server.predict(requests)
        assert np.allclose(served, expected)


class TestDeadlineProperties:
    """Deadline enforcement must never change a delivered answer: under any
    random mix of deadline-free, generous and already-expired requests, every
    value that comes back equals the direct-model answer, and every
    ``DeadlineExceededError`` corresponds to a genuinely expired budget —
    on both the thread and the asyncio backend."""

    # Capped below the profile budget even under ``ci``: every example spins
    # up a real server (thread or event loop); the kernel-level differential
    # suite is where the full example budget is spent.
    @settings(max_examples=12)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.sampled_from(["none", "generous", "expired"]),
            ),
            min_size=1,
            max_size=16,
        ),
        st.sampled_from(["thread", "asyncio"]),
        st.integers(min_value=1, max_value=6),
    )
    def test_deadline_mix_preserves_answers_and_misses_are_genuine(
        self, mix, backend, max_batch
    ):
        from oracle import LookupPredictor, make_lookup_pool

        from repro.api import PredictionRequest
        from repro.exceptions import DeadlineExceededError
        from repro.serving import AsyncPredictionServer, PredictionServer, ServerConfig

        pool = make_lookup_pool(6)
        # A generous budget cannot genuinely expire within this test; an
        # "expired" budget of 1 ns cannot survive even the admission path.
        deadlines = {"none": None, "generous": 30.0, "expired": 1e-9}
        config = ServerConfig(max_batch_size=max_batch, max_wait_s=0.001)
        server_cls = PredictionServer if backend == "thread" else AsyncPredictionServer
        with server_cls(LookupPredictor(), config=config) as server:
            entries = [
                (
                    idx,
                    kind,
                    server.submit_request(
                        PredictionRequest.of(pool[idx], deadline_s=deadlines[kind])
                    ),
                )
                for idx, kind in mix
            ]
            failures = 0
            for idx, kind, future in entries:
                try:
                    result = future.result(timeout=10.0)
                except DeadlineExceededError:
                    failures += 1
                    # Only a request whose budget can genuinely expire may fail.
                    assert kind == "expired"
                else:
                    # Every delivered answer equals the direct-model answer,
                    # whatever path (cache, coalescing, batcher) served it.
                    assert result.memory_mb == 10.0 * (idx + 1)
            report = server.snapshot()
        # Every raised error was a shed; late-but-delivered expired requests
        # may add further misses, never fewer.
        assert report.shed_requests == failures
        assert report.deadline_misses >= failures
        assert report.n_errors == 0


class TestTokenizerProperties:
    @_SETTINGS
    @given(st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" _.,()*'=<>"), max_size=120))
    def test_tokenizer_never_crashes_and_lowercases(self, text):
        tokens = tokenize_sql(text)
        assert all(token == token.lower() for token in tokens)
