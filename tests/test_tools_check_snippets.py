"""Tests for tools/check_snippets.py (docs snippet execution)."""

import importlib.util
import sys
from pathlib import Path

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_snippets.py"
_spec = importlib.util.spec_from_file_location("check_snippets", _TOOL)
check_snippets = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_snippets", check_snippets)
_spec.loader.exec_module(check_snippets)


def write(tmp_path: Path, name: str, content: str) -> Path:
    path = tmp_path / name
    path.write_text(content, encoding="utf-8")
    return path


class TestExtraction:
    def test_extracts_only_python_fences_with_line_numbers(self, tmp_path):
        doc = write(
            tmp_path,
            "doc.md",
            "# Title\n\n```bash\necho hi\n```\n\n```python\nx = 1\n```\n\n"
            "```text\nnot code\n```\n\n```python\ny = x + 1\n```\n",
        )
        snippets = check_snippets.extract_snippets(doc)
        assert [s.code for s in snippets] == ["x = 1\n", "y = x + 1\n"]
        assert snippets[0].line == 7
        assert snippets[1].line == 15

    def test_file_without_fences_yields_nothing(self, tmp_path):
        doc = write(tmp_path, "plain.md", "just prose, no code\n")
        assert check_snippets.extract_snippets(doc) == []


class TestExecution:
    def test_snippets_share_one_namespace_per_file(self, tmp_path):
        doc = write(
            tmp_path,
            "doc.md",
            "```python\nvalue = 21\n```\nprose\n```python\nassert value * 2 == 42\n```\n",
        )
        assert check_snippets.run_file(doc) == []

    def test_files_do_not_leak_into_each_other(self, tmp_path, capsys):
        write(tmp_path, "a.md", "```python\nleaky = 1\n```\n")
        write(
            tmp_path,
            "b.md",
            "```python\nassert 'leaky' not in dir()\n```\n",
        )
        assert check_snippets.main([str(tmp_path)]) == 0

    def test_raising_snippet_fails_with_location(self, tmp_path):
        doc = write(
            tmp_path,
            "bad.md",
            "intro\n\n```python\nraise ValueError('docs rotted')\n```\n",
        )
        errors = check_snippets.run_file(doc)
        assert len(errors) == 1
        assert "bad.md:3" in errors[0]
        assert "docs rotted" in errors[0]

    def test_failure_skips_dependent_blocks_in_same_file(self, tmp_path):
        doc = write(
            tmp_path,
            "bad.md",
            "```python\nbroken\n```\n\n```python\nraise AssertionError('must not run')\n```\n",
        )
        errors = check_snippets.run_file(doc)
        assert len(errors) == 1
        assert "NameError" in errors[0]


class TestMain:
    def test_exit_codes_and_summary(self, tmp_path, capsys):
        good = write(tmp_path, "good.md", "```python\nx = 1\n```\n")
        assert check_snippets.main([str(good)]) == 0
        out = capsys.readouterr().out
        assert "1 python snippet(s) ... ok" in out

        bad = write(tmp_path, "bad.md", "```python\n1 / 0\n```\n")
        assert check_snippets.main([str(bad)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "ZeroDivisionError" in captured.err

    def test_missing_file_is_an_error(self, tmp_path):
        assert check_snippets.main([str(tmp_path / "absent.md")]) == 1

    def test_directory_argument_collects_markdown(self, tmp_path):
        write(tmp_path, "one.md", "```python\na = 1\n```\n")
        write(tmp_path, "two.md", "```python\nb = 2\n```\n")
        assert check_snippets.main([str(tmp_path)]) == 0

    def test_repo_docs_snippets_pass(self):
        """The real README + docs snippets must execute (the CI docs job)."""
        repo_root = _TOOL.parent.parent
        assert (
            check_snippets.main([str(repo_root / "README.md"), str(repo_root / "docs")]) == 0
        )
