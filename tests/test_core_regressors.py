"""Tests for the regressor factory."""

import pytest

from repro.core.regressors import REGRESSOR_NAMES, make_regressor
from repro.exceptions import InvalidParameterError
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import Ridge
from repro.ml.mlp import MLPRegressor
from repro.ml.tree import DecisionTreeRegressor


class TestMakeRegressor:
    def test_all_paper_names_supported(self):
        expected_types = {
            "dnn": MLPRegressor,
            "ridge": Ridge,
            "dt": DecisionTreeRegressor,
            "rf": RandomForestRegressor,
            "xgb": GradientBoostingRegressor,
        }
        for name in REGRESSOR_NAMES:
            assert isinstance(make_regressor(name), expected_types[name])

    def test_aliases(self):
        assert isinstance(make_regressor("mlp"), MLPRegressor)
        assert isinstance(make_regressor("xgboost"), GradientBoostingRegressor)
        assert isinstance(make_regressor("random_forest"), RandomForestRegressor)

    def test_case_insensitive(self):
        assert isinstance(make_regressor("XGB"), GradientBoostingRegressor)

    def test_fast_mode_is_smaller(self):
        fast = make_regressor("rf", fast=True)
        full = make_regressor("rf", fast=False)
        assert fast.n_estimators < full.n_estimators

    def test_fast_dnn_uses_lbfgs(self):
        model = make_regressor("dnn", fast=True)
        assert model.solver == "lbfgs"

    def test_full_dnn_uses_paper_architecture(self):
        model = make_regressor("dnn", fast=False)
        assert model.hidden_layer_sizes == (48, 39, 27, 16, 7, 5)

    def test_overrides_win(self):
        model = make_regressor("xgb", n_estimators=5, max_depth=2)
        assert model.n_estimators == 5
        assert model.max_depth == 2

    def test_random_state_forwarded(self):
        assert make_regressor("rf", random_state=99).random_state == 99

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_regressor("svm")

    def test_each_regressor_fits_small_problem(self, linear_problem):
        X, y, _ = linear_problem
        for name in REGRESSOR_NAMES:
            model = make_regressor(name, random_state=0, fast=True)
            if name == "xgb":
                model = make_regressor(name, random_state=0, fast=True, n_estimators=10)
            model.fit(X[:100], y[:100])
            assert model.predict(X[:5]).shape == (5,)
