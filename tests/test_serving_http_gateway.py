"""Tests for the HTTP gateway: failure paths, middleware, end-to-end parity.

The failure-path tests drive raw HTTP (``http.client`` / bare sockets) so
the gateway's parsing and error mapping are exercised exactly as a foreign
client would hit them; the parity test drives a
:class:`~repro.serving.http.client.GatewayClient` and asserts the answers
are bit-identical to the in-process server on the same request stream.
"""

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest
from oracle import CountingPredictor

from repro.api import CachePolicy, PredictionRequest
from repro.core.model import LearnedWMP
from repro.core.workload import make_workloads
from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    RequestValidationError,
    ServingError,
    UnknownModelError,
)
from repro.registry import ModelRegistry
from repro.serving import (
    AsyncPredictionServer,
    GatewayClient,
    GatewayConfig,
    HttpGateway,
    PredictionServer,
    TelemetryReport,
)
from repro.serving.http.schemas import request_to_wire


@pytest.fixture(scope="module")
def workloads(tpcds_small):
    return make_workloads(tpcds_small.test_records, 5, seed=3)


def _raw_call(port, method, path, body=b"", headers=None):
    """One raw HTTP exchange; returns (status, parsed JSON body, response)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(method, path, body=body or None, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else None), response
    finally:
        conn.close()


class TestFailurePaths:
    """Every malformed input answers its mapped status without model work."""

    @pytest.fixture()
    def stack(self):
        model = CountingPredictor(42.0)
        with AsyncPredictionServer(model) as server:
            config = GatewayConfig(port=0, max_body_bytes=64 * 1024)
            with HttpGateway(server, config=config) as gateway:
                yield model, server, gateway

    def test_malformed_json_is_400_without_model_work(self, stack):
        model, _, gateway = stack
        status, body, _ = _raw_call(
            gateway.port, "POST", "/v1/predict", b"{this is not json"
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert model.calls == 0

    def test_strict_schema_violation_is_400(self, stack, workloads):
        model, _, gateway = stack
        wire = request_to_wire(PredictionRequest.of(workloads[0]))
        wire["extra_field"] = 1
        status, body, _ = _raw_call(
            gateway.port, "POST", "/v1/predict", json.dumps(wire).encode()
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert "extra_field" in body["error"]["message"]
        assert model.calls == 0

    def test_oversized_body_is_413_unread(self, stack):
        model, _, gateway = stack
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            # Announce a body far over the cap without sending it: the
            # gateway must answer from the headers alone.
            conn.putrequest("POST", "/v1/predict")
            conn.putheader("Content-Length", str(10**9))
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 413
        assert payload["error"]["code"] == "payload_too_large"
        assert model.calls == 0

    def test_unknown_route_is_404(self, stack):
        model, _, gateway = stack
        status, body, _ = _raw_call(gateway.port, "POST", "/v1/nope", b"{}")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert model.calls == 0

    def test_wrong_method_is_405_with_allow(self, stack):
        model, _, gateway = stack
        status, body, response = _raw_call(gateway.port, "GET", "/v1/predict")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"
        assert response.getheader("Allow") == "POST"
        assert model.calls == 0

    def test_mid_body_disconnect_never_reaches_the_model(self, stack):
        model, _, gateway = stack
        with socket.create_connection(("127.0.0.1", gateway.port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/predict HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Content-Length: 1000\r\n"
                b"\r\n"
                b"only a fragment"
            )
        # The disconnect is seen on the gateway loop shortly after close.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if gateway.gateway_stats()["aborted_connections"] >= 1:
                break
            time.sleep(0.01)
        assert gateway.gateway_stats()["aborted_connections"] >= 1
        assert model.calls == 0

    def test_expired_deadline_header_is_504_shed_into_telemetry(self, stack, workloads):
        model, server, gateway = stack
        wire = json.dumps(request_to_wire(PredictionRequest.of(workloads[0]))).encode()
        status, body, _ = _raw_call(
            gateway.port,
            "POST",
            "/v1/predict",
            wire,
            headers={"X-Deadline-Ms": "0"},
        )
        assert status == 504
        assert body["error"]["code"] == "deadline_exceeded"
        assert model.calls == 0
        report = server.snapshot()
        assert report.deadline_misses == 1
        assert report.shed_requests == 1
        # The shed is also visible in the full scrape a dashboard would pull.
        scrape_status, scrape, _ = _raw_call(gateway.port, "GET", "/v1/telemetry")
        assert scrape_status == 200
        assert scrape["shed_requests"] == 1
        assert scrape["gateway"]["responses_by_status"]["504"] == 1

    def test_non_numeric_deadline_header_is_400(self, stack, workloads):
        model, _, gateway = stack
        wire = json.dumps(request_to_wire(PredictionRequest.of(workloads[0]))).encode()
        status, body, _ = _raw_call(
            gateway.port, "POST", "/v1/predict", wire, headers={"X-Deadline-Ms": "soon"}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert model.calls == 0

    def test_malformed_request_line_is_400(self, stack):
        _, _, gateway = stack
        with socket.create_connection(("127.0.0.1", gateway.port), timeout=10) as sock:
            sock.sendall(b"COMPLETE NONSENSE\r\n\r\n")
            raw = sock.recv(4096)
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert gateway.gateway_stats()["malformed_requests"] >= 1


class TestMiddleware:
    def test_request_id_is_echoed_or_generated(self):
        with AsyncPredictionServer(CountingPredictor()) as server:
            with HttpGateway(server, config=GatewayConfig(port=0)) as gateway:
                _, _, response = _raw_call(
                    gateway.port, "GET", "/healthz", headers={"X-Request-Id": "mine-1"}
                )
                assert response.getheader("X-Request-Id") == "mine-1"
                _, _, response = _raw_call(gateway.port, "GET", "/healthz")
                generated = response.getheader("X-Request-Id")
                assert generated and generated.startswith("req-http-")

    def test_request_ids_are_visible_in_the_telemetry_scrape(self, workloads):
        with AsyncPredictionServer(CountingPredictor()) as server:
            with HttpGateway(server, config=GatewayConfig(port=0)) as gateway:
                wire = json.dumps(
                    request_to_wire(PredictionRequest.of(workloads[0]))
                ).encode()
                _raw_call(
                    gateway.port,
                    "POST",
                    "/v1/predict",
                    wire,
                    headers={"X-Request-Id": "traceable-7"},
                )
                _, scrape, _ = _raw_call(gateway.port, "GET", "/v1/telemetry")
                assert scrape["gateway"]["last_request_id"] == "traceable-7"

    def test_auth_hook_rejects_with_401_but_health_is_exempt(self):
        def deny_everyone(ctx):
            return None

        with AsyncPredictionServer(CountingPredictor()) as server:
            with HttpGateway(
                server, config=GatewayConfig(port=0), authenticator=deny_everyone
            ) as gateway:
                status, body, _ = _raw_call(gateway.port, "GET", "/v1/telemetry")
                assert status == 401
                assert body["error"]["code"] == "unauthorized"
                status, _, _ = _raw_call(gateway.port, "GET", "/healthz")
                assert status == 200

    def test_admission_gate_sheds_with_503(self, workloads):
        model = CountingPredictor(7.0, delay_s=0.5)
        with AsyncPredictionServer(model) as server:
            config = GatewayConfig(port=0, max_inflight=1)
            with HttpGateway(server, config=config) as gateway:
                with GatewayClient(gateway.url) as client:
                    first = client.submit_request(
                        PredictionRequest.of(workloads[0], cache_policy=CachePolicy.BYPASS)
                    )
                    time.sleep(0.1)  # let the first request occupy the slot
                    with pytest.raises(OverloadedError):
                        client.predict(
                            PredictionRequest.of(
                                workloads[1], cache_policy=CachePolicy.BYPASS
                            )
                        )
                    assert first.result(timeout=10).memory_mb == 7.0
                assert gateway.gateway_stats()["shed_overload"] >= 1

    def test_keep_alive_serves_many_requests_per_connection(self):
        with AsyncPredictionServer(CountingPredictor()) as server:
            with HttpGateway(server, config=GatewayConfig(port=0)) as gateway:
                conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
                try:
                    for _ in range(3):
                        conn.request("GET", "/healthz")
                        response = conn.getresponse()
                        assert response.status == 200
                        response.read()
                finally:
                    conn.close()
                assert gateway.gateway_stats()["connections"] == 1


class TestAdminAndClient:
    def test_promote_rollback_lineage_over_http(self, workloads):
        registry = ModelRegistry()
        registry.register("default", CountingPredictor(10.0))
        registry.register("default", CountingPredictor(20.0))
        registry.promote("default", 1)
        with AsyncPredictionServer(registry, model_name="default") as server:
            with HttpGateway(server, config=GatewayConfig(port=0)) as gateway:
                with GatewayClient(gateway.url) as client:
                    request = PredictionRequest.of(
                        workloads[0], cache_policy=CachePolicy.BYPASS
                    )
                    assert client.predict(request).model_version == 1
                    assert client.promote("default", 2) == 2
                    fresh = PredictionRequest.of(
                        workloads[1], cache_policy=CachePolicy.BYPASS
                    )
                    result = client.predict(fresh)
                    assert result.model_version == 2
                    assert result.memory_mb == 20.0
                    assert client.rollback("default") == 1
                    lineage = client.lineage("default")
                    assert [entry["version"] for entry in lineage] == [1, 2]
                    assert [entry["active"] for entry in lineage] == [True, False]
                    with pytest.raises(UnknownModelError):
                        client.lineage("missing")
                    with pytest.raises(RequestValidationError):
                        client.promote("default", True)

    def test_client_surfaces_connection_failures_as_serving_errors(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        client = GatewayClient(f"http://127.0.0.1:{free_port}", timeout_s=2.0)
        with pytest.raises(ServingError, match="unreachable"):
            client.healthz()
        client.close()

    def test_snapshot_parses_the_scrape_into_a_telemetry_report(self, workloads):
        with AsyncPredictionServer(CountingPredictor()) as server:
            with HttpGateway(server, config=GatewayConfig(port=0)) as gateway:
                with GatewayClient(gateway.url) as client:
                    client.predict(PredictionRequest.of(workloads[0]))
                    report = client.snapshot()
                    assert isinstance(report, TelemetryReport)
                    assert report.n_requests == 1
                    assert report.to_dict() == server.snapshot().to_dict()
                    assert client.cache_stats() is None
                    assert client.batcher_stats() is None


class TestEndToEndParity:
    @pytest.fixture(scope="class")
    def model(self, tpcds_small):
        model = LearnedWMP(
            regressor="ridge", n_templates=8, batch_size=5, random_state=7, fast=True
        )
        model.fit(tpcds_small.train_records)
        return model

    @pytest.mark.parametrize("backend_cls", [AsyncPredictionServer, PredictionServer])
    def test_gateway_answers_are_bit_identical_to_in_process(
        self, model, workloads, backend_cls
    ):
        # The same request stream (with repeats, so the cache participates)
        # through two fresh servers of the same model: once in-process, once
        # over the wire.  Floats must match bit-for-bit — JSON round-trips
        # doubles exactly and plans travel verbatim.
        stream = [workloads[i % 4] for i in range(12)]
        requests = [
            PredictionRequest.of(workload, request_id=f"parity-{i}")
            for i, workload in enumerate(stream)
        ]

        with backend_cls(model) as reference:
            expected = [reference.predict(request) for request in requests]

        with backend_cls(model) as backend:
            with HttpGateway(backend, config=GatewayConfig(port=0)) as gateway:
                with GatewayClient(gateway.url) as client:
                    got = [client.predict(request) for request in requests]
                    scrape = client.telemetry()

        for over_wire, in_process in zip(got, expected):
            assert over_wire.memory_mb == in_process.memory_mb  # bit-identical
            assert over_wire.request_id == in_process.request_id
            assert over_wire.model_name == in_process.model_name
            assert over_wire.model_version == in_process.model_version
            assert over_wire.cache_hit == in_process.cache_hit
        assert scrape["n_requests"] == len(requests)
        assert scrape["gateway"]["last_request_id"] == "parity-11"

    def test_batch_endpoint_matches_in_process_batch(self, model, workloads):
        requests = [
            PredictionRequest.of(workload, request_id=f"batch-{i}")
            for i, workload in enumerate(workloads[:6])
        ]
        with AsyncPredictionServer(model) as reference:
            expected = reference.predict_batch(requests)
        with AsyncPredictionServer(model) as backend:
            with HttpGateway(backend, config=GatewayConfig(port=0)) as gateway:
                with GatewayClient(gateway.url) as client:
                    got = client.predict_batch(requests)
        assert [r.memory_mb for r in got] == [r.memory_mb for r in expected]
        assert [r.request_id for r in got] == [r.request_id for r in expected]

    def test_deadline_misses_from_the_wire_land_in_the_scrape(self, model, workloads):
        with AsyncPredictionServer(model) as backend:
            with HttpGateway(backend, config=GatewayConfig(port=0)) as gateway:
                with GatewayClient(gateway.url) as client:
                    client.predict(PredictionRequest.of(workloads[0]))
                    with pytest.raises(DeadlineExceededError):
                        client.predict(
                            PredictionRequest.of(workloads[1], deadline_s=1e-9)
                        )
                    scrape = client.telemetry()
        assert scrape["deadline_misses"] == 1
        assert scrape["shed_requests"] == 1
        assert scrape["n_requests"] == 1
