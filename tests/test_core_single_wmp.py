"""Tests for the SingleWMP baselines."""

import numpy as np
import pytest

from repro.core.single_wmp import SingleWMP, SingleWMPDBMS
from repro.core.workload import Workload, make_workloads
from repro.exceptions import InvalidParameterError, NotFittedError


@pytest.fixture(scope="module")
def single_model(tpcds_small):
    model = SingleWMP("xgb", random_state=0, fast=True)
    model.fit(tpcds_small.train_records)
    return model


class TestSingleWMP:
    def test_per_query_predictions_positive(self, single_model, tpcds_small):
        predictions = single_model.predict_queries(tpcds_small.test_records[:20])
        assert predictions.shape == (20,)
        assert np.all(np.isfinite(predictions))

    def test_workload_prediction_is_sum_of_query_predictions(self, single_model, tpcds_small):
        queries = tpcds_small.test_records[:10]
        per_query = single_model.predict_queries(queries)
        assert single_model.predict_workload(queries) == pytest.approx(per_query.sum())

    def test_accepts_workload_object(self, single_model, tpcds_small):
        workload = Workload(queries=list(tpcds_small.test_records[:10]))
        assert single_model.predict_workload(workload) > 0.0

    def test_predict_matrix_of_workloads(self, single_model, tpcds_small):
        workloads = make_workloads(tpcds_small.test_records, 10, seed=0)
        predictions = single_model.predict(workloads)
        assert predictions.shape == (len(workloads),)

    def test_training_report(self, single_model, tpcds_small):
        report = single_model.training_report_
        assert report.n_queries == len(tpcds_small.train_records)
        assert report.regressor_time_s > 0.0

    def test_evaluate_reasonable_accuracy(self, single_model, tpcds_small):
        workloads = make_workloads(tpcds_small.test_records, 10, seed=0)
        metrics = single_model.evaluate(workloads)
        assert metrics["mape"] < 60.0

    def test_empty_fit_rejected(self):
        with pytest.raises(InvalidParameterError):
            SingleWMP().fit([])

    def test_unfitted_predict_raises(self, tpcds_small):
        with pytest.raises(NotFittedError):
            SingleWMP().predict_queries(tpcds_small.test_records[:5])

    def test_empty_query_list_prediction(self, single_model):
        assert single_model.predict_queries([]).shape == (0,)


class TestSingleWMPDBMS:
    def test_prediction_is_sum_of_optimizer_estimates(self, tpcds_small):
        queries = tpcds_small.test_records[:10]
        expected = sum(q.optimizer_estimate_mb for q in queries)
        assert SingleWMPDBMS().predict_workload(queries) == pytest.approx(expected)

    def test_fit_is_noop(self, tpcds_small):
        model = SingleWMPDBMS()
        assert model.fit(tpcds_small.train_records) is model

    def test_evaluate_returns_metrics(self, tpcds_small):
        workloads = make_workloads(tpcds_small.test_records, 10, seed=0)
        metrics = SingleWMPDBMS().evaluate(workloads)
        assert metrics["rmse"] > 0.0

    def test_ml_model_beats_heuristic_on_tpcds(self, single_model, tpcds_small):
        """The paper's central claim at small scale: ML beats the heuristic."""
        workloads = make_workloads(tpcds_small.test_records, 10, seed=0)
        ml_rmse = single_model.evaluate(workloads)["rmse"]
        dbms_rmse = SingleWMPDBMS().evaluate(workloads)["rmse"]
        assert ml_rmse < dbms_rmse
