"""Tests for the SQL parser."""

import pytest

from repro.dbms.sql.ast_nodes import (
    BetweenPredicate,
    Comparison,
    DeleteStatement,
    InPredicate,
    InsertStatement,
    LikePredicate,
    SelectStatement,
    UpdateStatement,
)
from repro.dbms.sql.parser import parse
from repro.exceptions import SQLSyntaxError


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse("select a, b from t")
        assert isinstance(statement, SelectStatement)
        assert [c.column for c in statement.select_columns] == ["a", "b"]
        assert statement.tables[0].table == "t"

    def test_table_alias(self):
        statement = parse("select s.a from sales s")
        assert statement.tables[0].alias == "s"
        assert statement.select_columns[0].table == "s"

    def test_aggregates(self):
        statement = parse("select count(*), sum(x), min(t.y) from t")
        funcs = [a.func for a in statement.aggregates]
        assert funcs == ["count", "sum", "min"]
        assert statement.aggregates[0].argument is None
        assert statement.aggregates[2].argument.table == "t"

    def test_count_distinct(self):
        statement = parse("select count(distinct a) from t")
        assert statement.aggregates[0].argument.column == "a"

    def test_where_comparisons(self):
        statement = parse("select a from t where a = 5 and b > 2.5 and c <> 7")
        ops = [p.op for p in statement.predicates if isinstance(p, Comparison)]
        assert ops == ["=", ">", "<>"]
        assert statement.predicates[1].value.value == 2.5

    def test_between_in_like(self):
        statement = parse(
            "select a from t where a between 1 and 10 and b in (1, 2, 3) and c like '%x%'"
        )
        kinds = [type(p) for p in statement.predicates]
        assert kinds == [BetweenPredicate, InPredicate, LikePredicate]
        assert len(statement.predicates[1].values) == 3
        assert statement.predicates[2].pattern == "%x%"

    def test_string_literal_predicate(self):
        statement = parse("select a from t where city = 'New York'")
        assert statement.predicates[0].value.value == "New York"

    def test_implicit_join_condition_goes_to_join_list(self):
        statement = parse("select a from t1, t2 where t1.id = t2.fk and t1.x = 3")
        assert len(statement.join_conditions) == 1
        assert len(statement.predicates) == 1
        assert str(statement.join_conditions[0].left) == "t1.id"

    def test_explicit_join_syntax(self):
        statement = parse("select a from t1 join t2 on t1.id = t2.fk where t2.x = 1")
        assert len(statement.tables) == 2
        assert len(statement.join_conditions) == 1

    def test_group_by_order_by_limit(self):
        statement = parse(
            "select a, count(*) from t group by a order by a desc limit 10"
        )
        assert [c.column for c in statement.group_by] == ["a"]
        assert statement.order_by[0].descending
        assert statement.limit == 10

    def test_distinct(self):
        assert parse("select distinct a from t").distinct

    def test_having_clause_accepted(self):
        statement = parse("select a, sum(b) from t group by a having sum(b) > 100")
        assert statement.is_aggregate

    def test_negative_literal(self):
        statement = parse("select a from t where x between -10 and -1")
        assert statement.predicates[0].low.value == -10

    def test_non_equality_column_comparison_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("select a from t1, t2 where t1.a > t2.b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("select a from t where a = 1 extra")

    def test_empty_statement_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("   ")

    def test_unsupported_statement_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("create table t (a int)")

    def test_semicolon_tolerated(self):
        statement = parse("select a from t;")
        assert isinstance(statement, SelectStatement)


class TestDmlParsing:
    def test_insert_single_row(self):
        statement = parse("insert into t (a, b) values (1, 'x')")
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ["a", "b"]
        assert statement.n_rows == 1

    def test_insert_multi_row(self):
        statement = parse("insert into t (a) values (1), (2), (3)")
        assert statement.n_rows == 3

    def test_update(self):
        statement = parse("update t set a = 1, b = 2.5 where c = 3")
        assert isinstance(statement, UpdateStatement)
        assert statement.set_columns == ["a", "b"]
        assert len(statement.predicates) == 1

    def test_update_without_where(self):
        statement = parse("update t set a = 1")
        assert statement.predicates == []

    def test_delete(self):
        statement = parse("delete from t where a = 5 and b = 6")
        assert isinstance(statement, DeleteStatement)
        assert len(statement.predicates) == 2

    def test_update_with_join_predicate_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("update t set a = 1 where t.x = s.y")


class TestBenchmarkQueriesParse:
    """Every statement emitted by the three generators must parse."""

    @pytest.mark.parametrize("benchmark_name", ["tpcds", "job", "tpcc"])
    def test_generated_queries_parse(self, benchmark_name):
        from repro.workloads.generator import build_benchmark

        generator = build_benchmark(benchmark_name)
        for query in generator.generate(80, seed=5):
            statement = parse(query.sql)
            assert statement is not None
