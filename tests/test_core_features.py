"""Tests for the memoized featurization pipeline (plan-fingerprint cache)."""

import copy
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.features import (
    FeatureCacheStats,
    MemoizedFeaturizer,
    clear_shared_feature_cache,
    feature_cache_stats,
    featurizer_config_fingerprint,
    plan_fingerprint,
    shared_feature_cache_stats,
)
from repro.core.featurizer import PlanFeaturizer
from repro.dbms.plan.operators import OperatorType, PlanNode
from repro.exceptions import InvalidParameterError

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _plan(card_a: float = 1000.0) -> PlanNode:
    scan_a = PlanNode(OperatorType.TBSCAN, est_cardinality=card_a, table="a")
    scan_b = PlanNode(OperatorType.TBSCAN, est_cardinality=500.0, table="b")
    join = PlanNode(OperatorType.HSJOIN, est_cardinality=800.0, children=[scan_a, scan_b])
    sort = PlanNode(OperatorType.SORT, est_cardinality=800.0, children=[join])
    return PlanNode(OperatorType.RETURN, est_cardinality=800.0, children=[sort])


@st.composite
def plan_trees(draw, depth: int = 3) -> PlanNode:
    """Random plan trees over the full operator vocabulary."""
    op = draw(st.sampled_from(list(OperatorType)))
    cardinality = draw(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)
    )
    n_children = draw(st.integers(0, 2)) if depth > 0 else 0
    children = [draw(plan_trees(depth=depth - 1)) for _ in range(n_children)]
    return PlanNode(op, est_cardinality=cardinality, children=children)


class TestPlanFingerprint:
    def test_equal_plans_hash_equal(self):
        assert plan_fingerprint(_plan()) == plan_fingerprint(_plan())

    def test_deep_copy_hashes_equal(self):
        plan = _plan()
        assert plan_fingerprint(plan) == plan_fingerprint(copy.deepcopy(plan))

    def test_cardinality_mutation_changes_fingerprint(self):
        assert plan_fingerprint(_plan(1000.0)) != plan_fingerprint(_plan(1001.0))

    def test_operator_mutation_changes_fingerprint(self):
        plan, mutated = _plan(), _plan()
        mutated.children[0].children[0].op_type = OperatorType.MSJOIN
        assert plan_fingerprint(plan) != plan_fingerprint(mutated)

    def test_child_order_changes_fingerprint(self):
        plan, swapped = _plan(), _plan()
        join = swapped.children[0].children[0]
        join.children = list(reversed(join.children))
        assert plan_fingerprint(plan) != plan_fingerprint(swapped)

    def test_extra_node_changes_fingerprint(self):
        plan, extended = _plan(), _plan()
        extended.children[0].children.append(
            PlanNode(OperatorType.FILTER, est_cardinality=10.0)
        )
        assert plan_fingerprint(plan) != plan_fingerprint(extended)

    def test_featurizer_irrelevant_fields_do_not_fragment(self):
        # Fields the featurizer never reads are excluded from the identity.
        plan, renamed = _plan(), _plan()
        renamed.children[0].children[0].children[0].table = "other"
        renamed.row_width = 64
        renamed.true_cardinality = 123.0
        assert plan_fingerprint(plan) == plan_fingerprint(renamed)

    @_SETTINGS
    @given(plan_trees())
    def test_fingerprint_stable_under_deep_copy(self, plan):
        assert plan_fingerprint(plan) == plan_fingerprint(copy.deepcopy(plan))

    @_SETTINGS
    @given(plan_trees())
    def test_cardinality_bump_changes_fingerprint(self, plan):
        mutated = copy.deepcopy(plan)
        mutated.est_cardinality = plan.est_cardinality + 1.0
        assert plan_fingerprint(plan) != plan_fingerprint(mutated)


class TestFingerprintMemo:
    """The fingerprint digest is memoized on the plan object, invalidation-safe."""

    def test_repeated_fingerprint_is_stable(self):
        plan = _plan()
        first = plan_fingerprint(plan)
        assert plan_fingerprint(plan) == first
        assert plan.__dict__.get("_fp_memo") is not None  # memo slot populated

    def test_scalar_mutation_on_deep_node_invalidates_memo(self):
        plan = _plan()
        before = plan_fingerprint(plan)
        plan.children[0].children[0].children[0].est_cardinality = 9999.0
        after = plan_fingerprint(plan)
        assert after != before
        assert after == plan_fingerprint(_mutated_reference())

    def test_op_type_mutation_invalidates_memo(self):
        plan = _plan()
        before = plan_fingerprint(plan)
        plan.children[0].children[0].op_type = OperatorType.MSJOIN
        assert plan_fingerprint(plan) != before

    def test_in_place_child_append_invalidates_memo(self):
        plan = _plan()
        before = plan_fingerprint(plan)
        plan.children[0].children.append(PlanNode(OperatorType.FILTER, est_cardinality=1.0))
        assert plan_fingerprint(plan) != before

    def test_in_place_child_reversal_invalidates_memo(self):
        plan = _plan()
        before = plan_fingerprint(plan)
        join = plan.children[0].children[0]
        join.children.reverse()
        assert plan_fingerprint(plan) != before

    def test_irrelevant_field_mutation_keeps_memo_valid(self):
        plan = _plan()
        before = plan_fingerprint(plan)
        plan.row_width = 999
        plan.true_cardinality = 123.0
        plan.detail = "changed"
        assert plan_fingerprint(plan) == before

    def test_mutate_then_revert_matches_fresh_tree(self):
        plan = _plan()
        plan_fingerprint(plan)
        plan.est_cardinality = 1.0
        plan_fingerprint(plan)
        plan.est_cardinality = 800.0  # back to the original value
        assert plan_fingerprint(plan) == plan_fingerprint(_plan())

    def test_pickle_round_trip_keeps_fingerprint_correct(self):
        plan = _plan()
        before = plan_fingerprint(plan)
        restored = pickle.loads(pickle.dumps(plan))
        assert plan_fingerprint(restored) == before
        restored.est_cardinality = 1.0  # the copy invalidates independently
        assert plan_fingerprint(restored) != before
        assert plan_fingerprint(plan) == before

    @_SETTINGS
    @given(plan_trees())
    def test_memoized_refingerprint_equals_fresh_copy(self, plan):
        first = plan_fingerprint(plan)
        assert plan_fingerprint(plan) == first
        assert plan_fingerprint(copy.deepcopy(plan)) == first


def _mutated_reference() -> PlanNode:
    plan = _plan()
    plan.children[0].children[0].children[0].est_cardinality = 9999.0
    return plan


class TestSharedFeatureCache:
    """Opt-in process-level cache keyed by (featurizer config, plan fingerprint)."""

    def setup_method(self):
        clear_shared_feature_cache()

    def test_same_config_shares_rows_across_instances(self):
        a = MemoizedFeaturizer(PlanFeaturizer(), shared=True)
        b = MemoizedFeaturizer(PlanFeaturizer(), shared=True)
        misses_before = shared_feature_cache_stats().misses
        row_a = a.featurize_plan(_plan())
        hits_before = shared_feature_cache_stats().hits
        row_b = b.featurize_plan(_plan())
        stats = shared_feature_cache_stats()
        assert np.array_equal(row_a, row_b)
        assert stats.hits == hits_before + 1  # b was served from a's row
        assert stats.misses == misses_before + 1

    def test_different_configs_do_not_collide(self):
        logged = MemoizedFeaturizer(PlanFeaturizer(log_cardinality=True), shared=True)
        raw = MemoizedFeaturizer(PlanFeaturizer(log_cardinality=False), shared=True)
        row_logged = logged.featurize_plan(_plan())
        row_raw = raw.featurize_plan(_plan())
        assert not np.array_equal(row_logged, row_raw)
        assert featurizer_config_fingerprint(logged.base) != featurizer_config_fingerprint(
            raw.base
        )

    def test_clear_only_drops_own_config(self):
        logged = MemoizedFeaturizer(PlanFeaturizer(log_cardinality=True), shared=True)
        raw = MemoizedFeaturizer(PlanFeaturizer(log_cardinality=False), shared=True)
        logged.featurize_plan(_plan())
        raw.featurize_plan(_plan())
        size_before = shared_feature_cache_stats().size
        logged.clear()
        assert shared_feature_cache_stats().size == size_before - 1
        hits_before = shared_feature_cache_stats().hits
        raw.featurize_plan(_plan())  # raw config survived the clear
        assert shared_feature_cache_stats().hits == hits_before + 1

    def test_private_caches_are_unaffected(self):
        private = MemoizedFeaturizer(PlanFeaturizer())
        shared = MemoizedFeaturizer(PlanFeaturizer(), shared=True)
        private.featurize_plan(_plan())
        assert shared_feature_cache_stats().size == 0
        shared.featurize_plan(_plan())
        assert private.stats().size == 1

    def test_configure_feature_cache_shared_opt_in(self, tpcds_small):
        from repro.core.model import LearnedWMP
        from repro.core.workload import make_workloads

        workloads = make_workloads(tpcds_small.test_records[:60], 10, seed=0)

        def fit_model():
            model = LearnedWMP(
                regressor="ridge", n_templates=8, batch_size=10, random_state=0
            )
            model.fit(tpcds_small.train_records[:200])
            return model

        v1, v2 = fit_model(), fit_model()
        v1.configure_feature_cache(shared=True)
        v2.configure_feature_cache(shared=True)
        assert v1.featurizer.shared and v2.featurizer.shared
        expected = v1.predict(workloads)
        hits_before = shared_feature_cache_stats().hits
        # The hot-swapped second version reuses v1's rows: every plan hits.
        assert np.array_equal(v2.predict(workloads), expected)
        assert shared_feature_cache_stats().hits >= hits_before + 60
        # Opting back out returns to a private cache.
        v2.configure_feature_cache(shared=False)
        assert v2.featurizer.shared is False

    def test_mixed_hits_and_misses_in_one_batch(self, tpcds_small):
        a = MemoizedFeaturizer(PlanFeaturizer(), shared=True)
        b = MemoizedFeaturizer(PlanFeaturizer(), shared=True)
        records = tpcds_small.train_records[:40]
        a.featurize_records(records[:20])
        expected = PlanFeaturizer().featurize_records(records)
        assert np.array_equal(b.featurize_records(records), expected)

    def test_pickle_keeps_shared_flag(self):
        shared = MemoizedFeaturizer(PlanFeaturizer(), shared=True)
        restored = pickle.loads(pickle.dumps(shared))
        assert restored.shared is True
        shared.featurize_plan(_plan())
        hits_before = shared_feature_cache_stats().hits
        restored.featurize_plan(_plan())  # rebinds to the same process store
        assert shared_feature_cache_stats().hits == hits_before + 1


class TestMemoizedFeaturizer:
    def test_memoized_features_bit_identical_cold_and_warm(self, tpcds_small):
        records = tpcds_small.train_records[:120]
        plain = PlanFeaturizer()
        memoized = MemoizedFeaturizer(PlanFeaturizer())
        expected = plain.featurize_records(records)
        assert np.array_equal(memoized.featurize_records(records), expected)  # cold
        assert np.array_equal(memoized.featurize_records(records), expected)  # warm
        for record in records[:10]:  # single-plan path, warm
            assert np.array_equal(
                memoized.featurize_record(record), plain.featurize_record(record)
            )

    @_SETTINGS
    @given(plan_trees())
    def test_memoized_plan_features_bit_identical(self, plan):
        plain = PlanFeaturizer()
        memoized = MemoizedFeaturizer(PlanFeaturizer())
        expected = plain.featurize_plan(plan)
        assert np.array_equal(memoized.featurize_plan(plan), expected)
        assert np.array_equal(memoized.featurize_plan(plan), expected)

    def test_respects_base_configuration(self, tpcds_small):
        records = tpcds_small.train_records[:40]
        raw = PlanFeaturizer(log_cardinality=False)
        memoized = MemoizedFeaturizer(PlanFeaturizer(log_cardinality=False))
        assert memoized.log_cardinality is False
        assert np.array_equal(
            memoized.featurize_records(records), raw.featurize_records(records)
        )

    def test_delegates_layout_to_base(self):
        memoized = MemoizedFeaturizer()
        plain = PlanFeaturizer()
        assert memoized.n_features == plain.n_features
        assert memoized.feature_names() == plain.feature_names()

    def test_cached_rows_are_read_only(self):
        memoized = MemoizedFeaturizer()
        row = memoized.featurize_plan(_plan())
        with pytest.raises(ValueError):
            row[0] = 99.0

    def test_hit_miss_counters(self):
        memoized = MemoizedFeaturizer()
        memoized.featurize_plan(_plan())
        memoized.featurize_plan(_plan())
        memoized.featurize_plan(_plan(2000.0))
        stats = memoized.stats()
        assert isinstance(stats, FeatureCacheStats)
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.size == 2
        assert stats.requests == 3
        assert stats.hit_rate == pytest.approx(1.0 / 3.0)

    def test_eviction_respects_capacity(self):
        memoized = MemoizedFeaturizer(max_entries=4)
        for i in range(10):
            memoized.featurize_plan(_plan(float(100 + i)))
        stats = memoized.stats()
        assert stats.size == 4
        assert stats.evictions == 6
        assert stats.max_entries == 4

    def test_lru_order_keeps_hot_entries(self):
        memoized = MemoizedFeaturizer(max_entries=2)
        hot, cold, fresh = _plan(1.0), _plan(2.0), _plan(3.0)
        memoized.featurize_plan(hot)
        memoized.featurize_plan(cold)
        memoized.featurize_plan(hot)  # refresh recency
        memoized.featurize_plan(fresh)  # evicts `cold`
        before = memoized.stats().hits
        memoized.featurize_plan(hot)
        assert memoized.stats().hits == before + 1

    def test_resize_shrinks_and_disallows_zero(self):
        memoized = MemoizedFeaturizer(max_entries=8)
        for i in range(8):
            memoized.featurize_plan(_plan(float(i + 1)))
        memoized.resize(2)
        assert memoized.stats().size == 2
        assert memoized.stats().evictions == 6
        with pytest.raises(InvalidParameterError):
            memoized.resize(0)

    def test_clear_drops_entries_but_keeps_counters(self):
        memoized = MemoizedFeaturizer()
        memoized.featurize_plan(_plan())
        memoized.clear()
        stats = memoized.stats()
        assert stats.size == 0
        assert stats.misses == 1

    def test_rejects_double_memoization_and_bad_capacity(self):
        with pytest.raises(InvalidParameterError):
            MemoizedFeaturizer(MemoizedFeaturizer())
        with pytest.raises(InvalidParameterError):
            MemoizedFeaturizer(max_entries=0)

    def test_pickle_round_trip_drops_cache_keeps_config(self):
        memoized = MemoizedFeaturizer(
            PlanFeaturizer(log_cardinality=False), max_entries=17
        )
        expected = memoized.featurize_plan(_plan())
        restored = pickle.loads(pickle.dumps(memoized))
        stats = restored.stats()
        assert stats.size == 0 and stats.hits == 0 and stats.misses == 0
        assert restored.max_entries == 17
        assert restored.log_cardinality is False
        assert np.array_equal(restored.featurize_plan(_plan()), expected)

    def test_batch_with_duplicate_plans_computes_once(self, tpcds_small):
        record = tpcds_small.train_records[0]
        memoized = MemoizedFeaturizer()
        matrix = memoized.featurize_records([record] * 5)
        assert matrix.shape[0] == 5
        assert np.array_equal(matrix, np.tile(matrix[0], (5, 1)))
        assert memoized.stats().size == 1

    def test_empty_batch(self):
        memoized = MemoizedFeaturizer()
        assert memoized.featurize_records([]).shape == (0, memoized.n_features)


class TestFeatureCacheStatsHelper:
    def test_extracts_from_learned_wmp(self, tpcds_small):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:200])
        stats = feature_cache_stats(model)
        assert isinstance(stats, FeatureCacheStats)
        assert stats.misses > 0  # fitting featurized the training plans

    def test_none_for_models_without_featurizer(self):
        from repro.integration.predictors import ConstantMemoryPredictor

        assert feature_cache_stats(ConstantMemoryPredictor(8.0)) is None

    def test_extracts_from_bare_featurizer_attribute(self):
        class WithFeaturizer:
            featurizer = MemoizedFeaturizer()

        assert isinstance(feature_cache_stats(WithFeaturizer()), FeatureCacheStats)


class TestModelIntegration:
    def test_learned_wmp_defaults_to_memoized_featurizer(self):
        from repro.core.model import LearnedWMP

        assert isinstance(LearnedWMP().featurizer, MemoizedFeaturizer)

    def test_predict_hits_cache_on_repeat(self, tpcds_small):
        from repro.core.model import LearnedWMP
        from repro.core.workload import make_workloads

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:200])
        workloads = make_workloads(tpcds_small.test_records[:100], 10, seed=0)
        first = model.predict(workloads)
        hits_before = model.feature_cache_stats().hits
        second = model.predict(workloads)
        assert np.array_equal(first, second)
        assert model.feature_cache_stats().hits >= hits_before + 100

    def test_memoized_and_plain_predictions_identical(self, tpcds_small):
        from repro.core.model import LearnedWMP
        from repro.core.workload import make_workloads

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:200])
        workloads = make_workloads(tpcds_small.test_records[:100], 10, seed=0)
        memoized_predictions = model.predict(workloads)
        memoized = model.featurizer
        model.featurizer = memoized.base
        try:
            plain_predictions = model.predict(workloads)
        finally:
            model.featurizer = memoized
        assert np.array_equal(memoized_predictions, plain_predictions)

    def test_configure_feature_cache_disable_resize_enable(self, tpcds_small):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.configure_feature_cache(0)
        assert isinstance(model.featurizer, PlanFeaturizer)
        assert model.feature_cache_stats() is None
        model.configure_feature_cache(64)
        assert isinstance(model.featurizer, MemoizedFeaturizer)
        assert model.featurizer.max_entries == 64
        model.configure_feature_cache(32)
        assert model.featurizer.max_entries == 32

    def test_configure_feature_cache_no_args_is_a_no_op(self):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.configure_feature_cache(0)  # memoization off
        plain = model.featurizer
        model.configure_feature_cache()  # nothing requested: must stay off
        assert model.featurizer is plain
        memoized = MemoizedFeaturizer(PlanFeaturizer())
        model.featurizer = memoized
        model.configure_feature_cache()  # and an existing cache is untouched
        assert model.featurizer is memoized

    def test_text_template_methods_have_no_plan_featurizer(self, tpcds_small):
        from repro.core.model import LearnedWMP
        from repro.exceptions import InvalidParameterError as IPE

        model = LearnedWMP(template_method="bag_of_words", random_state=0)
        assert model.featurizer is None
        model.configure_feature_cache(16)  # no-op, must not raise
        with pytest.raises(IPE):
            model.featurizer = PlanFeaturizer()

    def test_single_wmp_memoizes_raw_cardinalities(self, tpcds_small):
        from repro.core.single_wmp import SingleWMP

        model = SingleWMP(regressor="ridge", random_state=0, fast=True)
        assert isinstance(model.featurizer, MemoizedFeaturizer)
        assert model.featurizer.log_cardinality is False
        model.fit(tpcds_small.train_records[:150])
        assert model.feature_cache_stats().misses > 0
        model.configure_feature_cache(0)
        assert model.feature_cache_stats() is None
        assert model.featurizer.log_cardinality is False  # base config survives
        model.configure_feature_cache(64)
        assert model.featurizer.max_entries == 64

    def test_saved_model_restores_with_fresh_cache(self, tmp_path, tpcds_small):
        from repro.core.model import LearnedWMP
        from repro.core.serialization import load_model, save_model
        from repro.core.workload import make_workloads

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:200])
        workloads = make_workloads(tpcds_small.test_records[:60], 10, seed=0)
        expected = model.predict(workloads)
        save_model(model, tmp_path / "model.pkl")
        restored = load_model(tmp_path / "model.pkl")
        assert np.array_equal(restored.predict(workloads), expected)
        stats = restored.feature_cache_stats()
        assert stats.hits == 0 and stats.misses == 60  # cache started empty
