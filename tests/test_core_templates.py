"""Tests for plan-based query-template learning (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.templates import DEFAULT_N_TEMPLATES, QueryTemplateLearner
from repro.exceptions import InvalidParameterError, NotFittedError


class TestQueryTemplateLearner:
    def test_assignments_in_range(self, tpcds_small):
        learner = QueryTemplateLearner(15, random_state=0).fit(tpcds_small.train_records)
        assignments = learner.assign(tpcds_small.test_records)
        assert assignments.min() >= 0
        assert assignments.max() < learner.k
        assert learner.k == 15

    def test_assignment_deterministic(self, tpcds_small):
        learner = QueryTemplateLearner(10, random_state=3).fit(tpcds_small.train_records)
        a = learner.assign(tpcds_small.test_records)
        b = learner.assign(tpcds_small.test_records)
        assert np.array_equal(a, b)

    def test_similar_queries_share_template(self, toy_dbms):
        # Two parameterizations of the same query shape must land in the same
        # template, while a structurally different query should not.  The two
        # parameterizations have slightly different cardinality estimates
        # (store_id is a skewed column), but the structural gap to the
        # join/group-by query dominates the clustering distance.
        same_a = toy_dbms.execute("select count(*) from sales where store_id = 1", log=False)
        same_b = toy_dbms.execute("select count(*) from sales where store_id = 7", log=False)
        different = toy_dbms.execute(
            "select category, sum(amount) from sales s, items i "
            "where s.item_id = i.item_id group by category order by category",
            log=False,
        )
        corpus = [same_a, same_b, different] * 5
        learner = QueryTemplateLearner(2, random_state=0).fit(corpus)
        labels = learner.assign([same_a, same_b, different])
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]

    def test_template_sizes_sum_to_corpus(self, tpcds_small):
        learner = QueryTemplateLearner(12, random_state=0).fit(tpcds_small.train_records)
        sizes = learner.template_sizes(tpcds_small.train_records)
        assert sizes.sum() == len(tpcds_small.train_records)
        assert sizes.shape == (learner.k,)

    def test_auto_k_uses_elbow(self, tpcds_small):
        learner = QueryTemplateLearner(
            5, auto_k=True, elbow_candidates=(5, 10, 20, 40), random_state=0
        ).fit(tpcds_small.train_records[:200])
        assert learner.k in (5, 10, 20, 40)
        assert learner.elbow_profile_ is not None

    def test_k_capped_by_corpus_size(self, tpcds_small):
        learner = QueryTemplateLearner(500, random_state=0).fit(tpcds_small.train_records[:50])
        assert learner.k <= 50

    def test_assign_one(self, tpcds_small):
        learner = QueryTemplateLearner(8, random_state=0).fit(tpcds_small.train_records)
        template = learner.assign_one(tpcds_small.test_records[0])
        assert 0 <= template < learner.k

    def test_not_fitted_raises(self, tpcds_small):
        learner = QueryTemplateLearner(5)
        with pytest.raises(NotFittedError):
            learner.assign(tpcds_small.test_records)
        with pytest.raises(NotFittedError):
            _ = learner.k

    def test_empty_corpus_rejected(self):
        with pytest.raises(InvalidParameterError):
            QueryTemplateLearner(5).fit([])

    def test_invalid_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            QueryTemplateLearner(0)

    def test_default_constant(self):
        assert DEFAULT_N_TEMPLATES == 20
