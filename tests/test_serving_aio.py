"""Tests for the asyncio serving backend.

The async server must be a behavioral twin of the thread-backed
:class:`PredictionServer`: same cache/coalescing/batching semantics, same
typed provenance, same protocol surfaces — plus a coroutine-native API that
composes with a caller's own event loop.
"""

import asyncio
import threading
import time

import numpy as np
import pytest
from oracle import CountingPredictor, GatedLookupPredictor, make_lookup_pool

from repro.api import CachePolicy, PredictionRequest, Predictor
from repro.core.workload import make_workloads
from repro.exceptions import DeadlineExceededError, ServingError
from repro.integration.admission import AdmissionController
from repro.integration.predictors import ConstantMemoryPredictor
from repro.serving import (
    AsyncPredictionServer,
    LoadGenerator,
    ModelRegistry,
    ServerConfig,
    ServingTelemetry,
)


@pytest.fixture(scope="module")
def workload_pool(tpcds_small):
    return make_workloads(tpcds_small.test_records, 10, seed=3)


class TestSyncFacade:
    def test_single_prediction(self, workload_pool):
        with AsyncPredictionServer(ConstantMemoryPredictor(48.0)) as server:
            assert server.predict_workload(workload_pool[0]) == 48.0

    def test_satisfies_the_predictor_protocol(self):
        server = AsyncPredictionServer(ConstantMemoryPredictor(1.0))
        try:
            assert isinstance(server, Predictor)
        finally:
            server.close()

    def test_batch_prediction_matches_model(self, tpcds_small, workload_pool):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:300])
        expected = model.predict(workload_pool[:8])
        with AsyncPredictionServer(model) as server:
            served = server.predict(workload_pool[:8])
        np.testing.assert_allclose(served, expected, rtol=1e-9)

    def test_predict_stream_preserves_order(self, workload_pool):
        predictor = CountingPredictor()
        with AsyncPredictionServer(predictor) as server:
            results = list(server.predict_stream(workload_pool[:12]))
        assert results == [predictor.value] * 12

    def test_submit_after_close_raises(self, workload_pool):
        server = AsyncPredictionServer(ConstantMemoryPredictor(1.0))
        server.close()
        server.close()  # idempotent
        with pytest.raises(ServingError):
            server.submit(workload_pool[0])
        with pytest.raises(ServingError):
            server.submit_request(PredictionRequest.of(workload_pool[0]))

    def test_typed_result_carries_provenance(self, workload_pool):
        registry = ModelRegistry()
        registry.register("m", ConstantMemoryPredictor(5.0))
        with AsyncPredictionServer(registry, model_name="m") as server:
            first = server.predict(PredictionRequest.of(workload_pool[0]))
            repeat = server.predict(PredictionRequest.of(workload_pool[0]))
        assert first.model_name == "m" and first.model_version == 1
        assert first.cache_hit is False
        assert repeat.cache_hit is True
        assert repeat.memory_mb == first.memory_mb == 5.0

    def test_bypass_policy_reaches_the_model(self, workload_pool):
        predictor = CountingPredictor()
        with AsyncPredictionServer(predictor) as server:
            server.predict(PredictionRequest.of(workload_pool[0]))
            calls = predictor.calls
            bypass = server.predict(
                PredictionRequest.of(workload_pool[0], cache_policy=CachePolicy.BYPASS)
            )
            assert predictor.calls == calls + 1
            assert bypass.cache_hit is False

    def test_deadline_miss_raises_serving_error(self, workload_pool):
        predictor = CountingPredictor(delay_s=0.3)
        config = ServerConfig(enable_cache=False, max_wait_s=0.0)
        with AsyncPredictionServer(predictor, config=config) as server:
            with pytest.raises(ServingError, match="deadline"):
                server.predict(PredictionRequest.of(workload_pool[0], deadline_s=0.01))


class TestCachingAndCoalescing:
    def test_repeated_workload_hits_cache(self, workload_pool):
        predictor = CountingPredictor()
        with AsyncPredictionServer(predictor, config=ServerConfig(max_wait_s=0.0)) as server:
            server.predict_workload(workload_pool[0])
            first_calls = predictor.calls
            for _ in range(5):
                server.predict_workload(workload_pool[0])
            assert predictor.calls == first_calls
            stats = server.cache_stats()
        assert stats.hits == 5

    def test_burst_of_identical_requests_coalesces(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(max_batch_size=64, max_wait_s=0.05)
        with AsyncPredictionServer(predictor, config=config) as server:
            futures = [server.submit(workload_pool[0]) for _ in range(20)]
            results = [f.result(timeout=5.0) for f in futures]
            assert results == [predictor.value] * 20
            # One unique signature -> exactly one batched model call.
            assert sum(predictor.batch_sizes) == 1
            assert server.coalesced_requests == 19

    def test_micro_batching_coalesces_distinct_workloads(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(max_batch_size=32, max_wait_s=0.05)
        with AsyncPredictionServer(predictor, config=config) as server:
            futures = [server.submit(w) for w in workload_pool[:12]]
            for future in futures:
                future.result(timeout=5.0)
            stats = server.batcher_stats()
        assert stats.requests == 12
        assert stats.batches < 12
        assert stats.max_batch_size_seen > 1

    def test_cache_disabled_calls_model_every_time(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(enable_cache=False, enable_batching=False)
        with AsyncPredictionServer(predictor, config=config) as server:
            for _ in range(3):
                server.predict_workload(workload_pool[0])
            assert server.cache_stats() is None
            assert server.batcher_stats() is None
        assert predictor.calls == 3

    def test_flush_on_size_splits_oversized_waves(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(max_batch_size=4, max_wait_s=0.05)
        with AsyncPredictionServer(predictor, config=config) as server:
            futures = [server.submit(w) for w in workload_pool[:10]]
            for future in futures:
                future.result(timeout=5.0)
            stats = server.batcher_stats()
        assert stats.max_batch_size_seen <= 4
        assert stats.size_flushes >= 1


class TestHotSwap:
    def test_promotion_changes_served_model_and_clears_cache(self, workload_pool):
        registry = ModelRegistry()
        registry.register("m", ConstantMemoryPredictor(10.0))
        with AsyncPredictionServer(registry, model_name="m") as server:
            assert server.predict_workload(workload_pool[0]) == 10.0
            registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
            assert server.predict_workload(workload_pool[0]) == 99.0

    def test_rollback_restores_old_answers(self, workload_pool):
        registry = ModelRegistry()
        registry.register("m", ConstantMemoryPredictor(10.0))
        registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
        with AsyncPredictionServer(registry, model_name="m") as server:
            assert server.predict_workload(workload_pool[0]) == 99.0
            registry.rollback("m")
            assert server.predict_workload(workload_pool[0]) == 10.0

    def test_unknown_model_name_fails_fast(self):
        with pytest.raises(ServingError):
            AsyncPredictionServer(ModelRegistry(), model_name="missing")

    def test_post_swap_request_does_not_coalesce_onto_pre_swap_computation(
        self, workload_pool
    ):
        """Regression: promotion cleared the cache but not the singleflight
        table, so a post-swap request could attach to a pre-swap computation
        and repopulate the fresh cache with the old model's value."""
        registry = ModelRegistry()
        registry.register("m", CountingPredictor(value=10.0, delay_s=0.3))
        config = ServerConfig(max_wait_s=0.0)
        with AsyncPredictionServer(registry, model_name="m", config=config) as server:
            stale = server.submit(workload_pool[0])  # in-flight on the old model
            time.sleep(0.05)
            registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
            fresh = server.submit(workload_pool[0])
            assert fresh.result(timeout=5.0) == 99.0
            assert stale.result(timeout=5.0) == 10.0  # admitted pre-swap
            # The pre-swap computation must not have repopulated the fresh
            # cache: a repeat still sees the promoted model's answer.
            assert server.predict_workload(workload_pool[0]) == 99.0
            assert server.coalesced_requests == 0


class TestAsyncNativeSurface:
    def test_predict_async_from_a_caller_loop(self, workload_pool):
        async def drive():
            with AsyncPredictionServer(ConstantMemoryPredictor(42.0)) as server:
                result = await server.predict_async(PredictionRequest.of(workload_pool[0]))
                repeat = await server.predict_async(PredictionRequest.of(workload_pool[0]))
                return result, repeat

        result, repeat = asyncio.run(drive())
        assert result.memory_mb == 42.0 and result.cache_hit is False
        assert repeat.cache_hit is True

    def test_predict_batch_async_submits_before_awaiting(self, workload_pool):
        predictor = CountingPredictor()
        config = ServerConfig(max_batch_size=32, max_wait_s=0.05)

        async def drive():
            with AsyncPredictionServer(predictor, config=config) as server:
                requests = [PredictionRequest.of(w) for w in workload_pool[:8]]
                return await server.predict_batch_async(requests)

        results = asyncio.run(drive())
        assert [r.memory_mb for r in results] == [predictor.value] * 8
        # All eight were in flight together, so they formed real batches.
        assert max(predictor.batch_sizes) > 1

    def test_concurrent_tasks_share_the_server(self, workload_pool):
        async def drive():
            with AsyncPredictionServer(ConstantMemoryPredictor(7.0)) as server:
                tasks = [
                    asyncio.create_task(server.predict_async(PredictionRequest.of(w)))
                    for w in workload_pool[:10]
                ]
                return await asyncio.gather(*tasks)

        results = asyncio.run(drive())
        assert [r.memory_mb for r in results] == [7.0] * 10

    def test_cancelled_deadline_request_leaves_no_stale_inflight(self, workload_pool):
        """A deadline-cancelled request must not pin its in-flight entry.

        Regression test: the cancelled owner used to leak its singleflight
        entry, so every later identical request attached to the stale future
        and kept getting the old model's value — surviving even a hot swap
        (promotion clears the cache, not the in-flight table).
        """
        slow = CountingPredictor(value=16.0, delay_s=0.2)
        registry = ModelRegistry()
        registry.register("m", slow)
        config = ServerConfig(max_wait_s=0.0)

        async def drive():
            with AsyncPredictionServer(registry, model_name="m", config=config) as server:
                with pytest.raises(ServingError, match="deadline"):
                    await server.predict_async(
                        PredictionRequest.of(workload_pool[0], deadline_s=0.01)
                    )
                await asyncio.sleep(0.5)  # let the orphaned batch finish
                registry.register("m", ConstantMemoryPredictor(99.0), promote=True)
                result = await server.predict_async(PredictionRequest.of(workload_pool[0]))
                return result.memory_mb

        assert asyncio.run(drive()) == 99.0

    def test_async_deadline_miss_raises(self, workload_pool):
        predictor = CountingPredictor(delay_s=0.3)
        config = ServerConfig(enable_cache=False, max_wait_s=0.0)

        async def drive():
            with AsyncPredictionServer(predictor, config=config) as server:
                await server.predict_async(
                    PredictionRequest.of(workload_pool[0], deadline_s=0.01)
                )

        with pytest.raises(ServingError, match="deadline"):
            asyncio.run(drive())


class TestDeadlines:
    def test_expired_request_is_shed_before_the_model(self, workload_pool):
        predictor = CountingPredictor()
        with AsyncPredictionServer(predictor) as server:
            doomed = server.submit_request(
                PredictionRequest.of(
                    workload_pool[0], deadline_s=1e-9, cache_policy=CachePolicy.BYPASS
                )
            )
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5.0)
            report = server.snapshot()
        assert predictor.calls == 0  # never occupied a batch slot
        assert report.shed_requests == 1
        assert report.deadline_misses == 1
        assert report.n_errors == 0

    def test_queued_request_expiring_behind_a_slow_batch_is_shed(self, workload_pool):
        predictor = CountingPredictor(delay_s=0.3)
        config = ServerConfig(max_wait_s=0.0)
        with AsyncPredictionServer(predictor, config=config) as server:
            blocker = server.submit(workload_pool[0])
            time.sleep(0.05)  # first batch occupies the single model worker
            doomed = server.submit_request(
                PredictionRequest.of(workload_pool[1], deadline_s=0.1)
            )
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5.0)
            assert blocker.result(timeout=5.0) == predictor.value
            assert server.batcher_stats().shed_requests == 1
            report = server.snapshot()
        # Only the blocker's batch reached the model: the expired request
        # was shed at execution start, behind the executor queue.
        assert predictor.batch_sizes == [1]
        assert report.shed_requests == 1

    def test_predict_batch_deadline_clock_starts_at_submission(self, workload_pool):
        """Regression: request *i*'s budget must not grow by the time spent
        awaiting requests before it in the batch loop."""
        predictor = CountingPredictor(delay_s=0.25)
        config = ServerConfig(max_batch_size=1, max_wait_s=0.0, enable_cache=False)
        with AsyncPredictionServer(predictor, config=config) as server:
            requests = [
                PredictionRequest.of(workload_pool[i], deadline_s=0.4) for i in range(3)
            ]
            with pytest.raises(DeadlineExceededError):
                server.predict_batch(requests)

    def test_async_native_deadline_miss_is_counted_in_telemetry(self, workload_pool):
        """Regression: ``predict_async`` expiry used to cancel the handler
        coroutine, so the miss never reached the telemetry counters and the
        abandoned future warned 'exception was never retrieved'."""
        predictor = CountingPredictor(delay_s=0.3)
        config = ServerConfig(max_wait_s=0.0)

        async def drive(server):
            blocker = asyncio.wrap_future(server.submit(workload_pool[0]))
            await asyncio.sleep(0.05)  # first batch occupies the model worker
            with pytest.raises(DeadlineExceededError):
                await server.predict_async(
                    PredictionRequest.of(workload_pool[1], deadline_s=0.1)
                )
            await blocker

        with AsyncPredictionServer(predictor, config=config) as server:
            asyncio.run(drive(server))
            # The abandoned request is still shed and accounted by the
            # pipeline, exactly as on the thread backend.
            deadline = time.monotonic() + 5.0
            while server.snapshot().shed_requests == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            report = server.snapshot()
        assert report.shed_requests == 1
        assert report.deadline_misses == 1
        assert report.n_errors == 0

    def test_predict_batch_async_deadline_clock_starts_at_submission(self, workload_pool):
        predictor = CountingPredictor(delay_s=0.25)
        config = ServerConfig(max_batch_size=1, max_wait_s=0.0, enable_cache=False)

        async def drive():
            with AsyncPredictionServer(predictor, config=config) as server:
                requests = [
                    PredictionRequest.of(workload_pool[i], deadline_s=0.4) for i in range(3)
                ]
                await server.predict_batch_async(requests)

        with pytest.raises(DeadlineExceededError):
            asyncio.run(drive())


class TestPriorityExecution:
    def test_ready_batches_execute_priority_first(self):
        """Same contract as the thread backend: the drainer picks the
        priority-1 batch over the older priority-0 backlog once the
        executor frees up."""
        model = GatedLookupPredictor()
        pool = make_lookup_pool(3)
        config = ServerConfig(max_batch_size=1, max_wait_s=0.0, enable_cache=False)
        with AsyncPredictionServer(model, config=config) as server:
            first = server.submit_request(PredictionRequest.of(pool[0]))
            assert model.started.wait(5.0)
            low = server.submit_request(PredictionRequest.of(pool[1]))
            high = server.submit_request(PredictionRequest.of(pool[2], priority=1))
            # Submission is asynchronous here (posted to the loop thread):
            # wait until both requests land in the kernel's pending queue
            # before letting the gated batch finish.  The kernel only cuts
            # batches while an execution slot is free, so the backlog waits
            # (priority-ordered) in _pending rather than the ready heap.
            deadline = time.monotonic() + 5.0
            while len(server._kernel._pending) < 2 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert len(server._kernel._pending) == 2
            model.release.set()
            for future in (first, low, high):
                future.result(timeout=5.0)
        assert model.order == [10.0, 30.0, 20.0]


class TestIntegrationAndTelemetry:
    def test_admission_controller_accepts_async_server(self, workload_pool):
        with AsyncPredictionServer(ConstantMemoryPredictor(40.0)) as server:
            controller = AdmissionController(server, memory_pool_mb=100.0)
            report = controller.run(workload_pool[:6])
        assert report.n_rounds == 3

    def test_load_generator_drives_async_server(self, workload_pool):
        from repro.workloads.replay import replay_requests_from_workloads

        requests = replay_requests_from_workloads(workload_pool, 60, repeat_fraction=0.6, seed=1)
        with AsyncPredictionServer(ConstantMemoryPredictor(8.0)) as server:
            report = LoadGenerator(server, requests, qps=600.0, benchmark="tpcds").run()
        assert report.n_requests == 60
        assert report.n_errors == 0
        assert report.achieved_qps > 0.0

    def test_snapshot_counts_and_errors(self, workload_pool):
        class FailingPredictor:
            def predict_workload(self, queries):
                raise RuntimeError("boom")

            def predict(self, workloads):
                raise RuntimeError("boom")

        with AsyncPredictionServer(ConstantMemoryPredictor(5.0)) as server:
            server.predict(workload_pool[:10])
            report = server.snapshot()
        assert report.n_requests == 10
        assert report.latency_p50_ms <= report.latency_p99_ms

        config = ServerConfig(enable_cache=False, max_wait_s=0.0)
        with AsyncPredictionServer(FailingPredictor(), config=config) as server:
            with pytest.raises(RuntimeError):
                server.predict_workload(workload_pool[0])
            assert server.snapshot().n_errors == 1

    def test_shared_telemetry_accumulator(self, workload_pool):
        telemetry = ServingTelemetry()
        with AsyncPredictionServer(ConstantMemoryPredictor(1.0), telemetry=telemetry) as one:
            one.predict(workload_pool[:3])
        with AsyncPredictionServer(ConstantMemoryPredictor(2.0), telemetry=telemetry) as two:
            two.predict(workload_pool[3:6])
        assert telemetry.snapshot().n_requests == 6
