"""Tests for estimated and true cardinality computation."""

import pytest

from repro.dbms.plan.cardinality import CardinalityModel
from repro.dbms.sql.parser import parse


@pytest.fixture()
def model(toy_catalog):
    return CardinalityModel(toy_catalog)


def _select(sql: str):
    statement = parse(sql)
    return statement


class TestSelectivities:
    def test_equality_selectivity_is_one_over_ndv(self, model, toy_catalog):
        statement = _select("select * from sales where item_id = 5")
        cards = model.table_cardinalities(statement.tables[0], statement)
        expected = toy_catalog.table("sales").row_count / 10_000
        assert cards.estimated == pytest.approx(expected, rel=1e-6)

    def test_uniform_column_true_equals_estimate(self, model):
        # quantity has skew 0, so the true selectivity must equal the estimate.
        statement = _select("select * from sales where quantity = 10")
        cards = model.table_cardinalities(statement.tables[0], statement)
        assert cards.true == pytest.approx(cards.estimated, rel=1e-9)

    def test_skewed_column_true_differs_by_value(self, model):
        statement_a = _select("select * from sales where store_id = 1")
        statement_b = _select("select * from sales where store_id = 2")
        cards_a = model.table_cardinalities(statement_a.tables[0], statement_a)
        cards_b = model.table_cardinalities(statement_b.tables[0], statement_b)
        # The frequent-value statistics make the estimate value-dependent on a
        # skewed column...
        assert cards_a.estimated != pytest.approx(cards_b.estimated)
        # ...and the true cardinalities depend on the bound literal as well.
        assert cards_a.true != pytest.approx(cards_b.true)

    def test_skewed_column_estimate_under_reacts_to_skew(self, model, toy_catalog):
        """The optimizer tracks the direction of the skew but not its full size."""
        import math

        rows = toy_catalog.table("sales").row_count
        uniform = rows / 50  # 1/NDV baseline for store_id
        for value in (1, 2, 3, 5, 8, 13):
            statement = _select(f"select * from sales where store_id = {value}")
            cards = model.table_cardinalities(statement.tables[0], statement)
            est_dev = math.log(cards.estimated / uniform)
            true_dev = math.log(cards.true / uniform)
            # Same direction, smaller magnitude.
            assert est_dev * true_dev >= 0.0
            assert abs(est_dev) < abs(true_dev) + 1e-9

    def test_between_interpolates_over_domain_stats(self, model, toy_catalog):
        """A column with min/max stats gets width-proportional range estimates."""
        from repro.dbms.catalog import Catalog, Column

        catalog = Catalog(name="range")
        catalog.add_table(
            "events",
            100_000,
            [Column("ts", "int", 5000, 8, min_value=0, max_value=10_000)],
        )
        range_model = CardinalityModel(catalog)
        narrow = parse("select * from events where ts between 0 and 100")
        wide = parse("select * from events where ts between 0 and 5000")
        est_narrow = range_model.table_cardinalities(narrow.tables[0], narrow).estimated
        est_wide = range_model.table_cardinalities(wide.tables[0], wide).estimated
        assert est_narrow == pytest.approx(100_000 * 100 / 10_000, rel=1e-6)
        assert est_wide == pytest.approx(100_000 * 5000 / 10_000, rel=1e-6)
        assert est_wide > est_narrow

    def test_inequality_interpolates_over_domain_stats(self, model):
        from repro.dbms.catalog import Catalog, Column

        catalog = Catalog(name="range")
        catalog.add_table(
            "events",
            10_000,
            [Column("ts", "int", 5000, 8, min_value=0, max_value=1_000)],
        )
        range_model = CardinalityModel(catalog)
        low_cut = parse("select * from events where ts > 900")
        high_cut = parse("select * from events where ts > 100")
        est_low = range_model.table_cardinalities(low_cut.tables[0], low_cut).estimated
        est_high = range_model.table_cardinalities(high_cut.tables[0], high_cut).estimated
        assert est_low == pytest.approx(10_000 * 0.1, rel=1e-6)
        assert est_high == pytest.approx(10_000 * 0.9, rel=1e-6)

    def test_true_cardinality_deterministic(self, model):
        statement = _select("select * from sales where store_id = 7")
        first = model.table_cardinalities(statement.tables[0], statement).true
        second = model.table_cardinalities(statement.tables[0], statement).true
        assert first == second

    def test_conjunctive_predicates_multiply_estimates(self, model, toy_catalog):
        single = _select("select * from sales where item_id = 5")
        double = _select("select * from sales where item_id = 5 and quantity = 3")
        rows = toy_catalog.table("sales").row_count
        est_single = model.table_cardinalities(single.tables[0], single).estimated
        est_double = model.table_cardinalities(double.tables[0], double).estimated
        assert est_double == pytest.approx(est_single / 100.0, rel=1e-6)
        assert est_double >= 1.0
        assert est_single <= rows

    def test_correlated_predicates_keep_more_rows_than_independence(self, model):
        double = _select("select * from sales where quantity = 3 and amount = 100")
        cards = model.table_cardinalities(double.tables[0], double)
        # Both columns are (nearly) unskewed so the only difference is the
        # correlation relief on the second predicate.
        assert cards.true > cards.estimated

    def test_in_predicate_selectivity_scales_with_list(self, model):
        small = _select("select * from sales where item_id in (1, 2)")
        large = _select("select * from sales where item_id in (1, 2, 3, 4, 5, 6)")
        est_small = model.table_cardinalities(small.tables[0], small).estimated
        est_large = model.table_cardinalities(large.tables[0], large).estimated
        assert est_large == pytest.approx(3.0 * est_small, rel=1e-6)

    def test_range_and_like_have_fixed_default_selectivities(self, model, toy_catalog):
        rows = toy_catalog.table("sales").row_count
        between = _select("select * from sales where quantity between 1 and 10")
        cards = model.table_cardinalities(between.tables[0], between)
        assert cards.estimated == pytest.approx(rows / 6.0, rel=1e-6)

    def test_unknown_column_does_not_crash(self, model):
        statement = _select("select * from sales where mystery_col = 1")
        cards = model.table_cardinalities(statement.tables[0], statement)
        assert cards.estimated >= 1.0


class TestJoins:
    def test_join_selectivity_uses_larger_ndv(self, model):
        statement = _select(
            "select * from sales s, items i where s.item_id = i.item_id"
        )
        selectivity = model.join_selectivity(statement.join_conditions[0], statement)
        assert selectivity == pytest.approx(1.0 / 10_000)

    def test_true_join_selectivity_positive_and_bounded(self, model):
        statement = _select(
            "select * from sales s, stores st where s.store_id = st.store_id"
        )
        true_sel = model.join_selectivity(statement.join_conditions[0], statement, true=True)
        assert 0.0 < true_sel <= 1.0


class TestGroupCount:
    def test_group_count_bounded_by_ndv_and_input(self, model):
        statement = _select(
            "select category, count(*) from items where price > 10 group by category"
        )
        est, true = model.group_count(statement, 500.0, 400.0)
        assert est <= 20.0  # category NDV
        est_small, _ = model.group_count(statement, 3.0, 3.0)
        assert est_small <= 3.0

    def test_scalar_aggregate_single_group(self, model):
        statement = _select("select count(*) from items")
        assert model.group_count(statement, 1000.0, 1000.0) == (1.0, 1.0)
