"""Tests for the registry's serving surface (register / promote / rollback).

The lineage surface and the deprecated import-path shims are covered in
``tests/test_registry.py``.
"""

import pytest

from repro.core.serialization import save_model
from repro.exceptions import SerializationError, ServingError
from repro.integration.predictors import ConstantMemoryPredictor
from repro.registry import ModelRegistry


def predictor(value: float = 64.0) -> ConstantMemoryPredictor:
    return ConstantMemoryPredictor(value)


class TestRegister:
    def test_versions_are_monotonic(self):
        registry = ModelRegistry()
        assert registry.register("m", predictor()) == 1
        assert registry.register("m", predictor()) == 2
        assert registry.register("m", predictor()) == 3
        assert registry.versions("m") == [1, 2, 3]

    def test_first_version_is_auto_promoted(self):
        registry = ModelRegistry()
        registry.register("m", predictor(10.0))
        assert registry.active_version("m") == 1
        assert registry.active("m").memory_mb == 10.0

    def test_later_versions_stay_passive_unless_promoted(self):
        registry = ModelRegistry()
        registry.register("m", predictor(10.0))
        registry.register("m", predictor(20.0))
        assert registry.active_version("m") == 1
        registry.register("m", predictor(30.0), promote=True)
        assert registry.active_version("m") == 3
        assert registry.active("m").memory_mb == 30.0

    def test_names_are_independent(self):
        registry = ModelRegistry()
        registry.register("a", predictor(1.0))
        registry.register("b", predictor(2.0))
        assert registry.names() == ["a", "b"]
        assert registry.active("a").memory_mb == 1.0
        assert registry.active("b").memory_mb == 2.0

    def test_empty_name_rejected(self):
        with pytest.raises(ServingError):
            ModelRegistry().register("", predictor())


class TestPromoteRollback:
    def test_promote_hot_swaps_active(self):
        registry = ModelRegistry()
        registry.register("m", predictor(10.0))
        registry.register("m", predictor(20.0))
        registry.promote("m", 2)
        assert registry.active("m").memory_mb == 20.0

    def test_rollback_restores_previous_active(self):
        registry = ModelRegistry()
        registry.register("m", predictor(10.0))
        registry.register("m", predictor(20.0), promote=True)
        assert registry.active_version("m") == 2
        assert registry.rollback("m") == 1
        assert registry.active("m").memory_mb == 10.0

    def test_rollback_walks_promotion_history(self):
        registry = ModelRegistry()
        registry.register("m", predictor(10.0))
        registry.register("m", predictor(20.0), promote=True)
        registry.register("m", predictor(30.0), promote=True)
        assert registry.rollback("m") == 2
        assert registry.rollback("m") == 1
        with pytest.raises(ServingError):
            registry.rollback("m")

    def test_promote_unknown_version_raises(self):
        registry = ModelRegistry()
        registry.register("m", predictor())
        with pytest.raises(ServingError):
            registry.promote("m", 99)

    def test_unknown_name_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ServingError):
            registry.active("nope")
        with pytest.raises(ServingError):
            registry.rollback("nope")


class TestPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        registry = ModelRegistry()
        registry.register("m", predictor(42.0))
        path = registry.save("m", tmp_path / "m.pkl")
        fresh = ModelRegistry()
        version = fresh.load("restored", path, promote=True)
        assert version == 1
        assert fresh.active("restored").memory_mb == 42.0
        assert fresh.get("restored").source_path == path

    def test_inspect_file_reads_header_without_unpickling(self, tmp_path):
        path = save_model(predictor(7.0), tmp_path / "m.pkl")
        header = ModelRegistry.inspect_file(path)
        assert header is not None
        assert header["model_class"] == "ConstantMemoryPredictor"

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            ModelRegistry().load("m", tmp_path / "missing.pkl")

    def test_load_validates_expected_class(self, tmp_path):
        path = save_model(predictor(7.0), tmp_path / "m.pkl")
        registry = ModelRegistry()
        with pytest.raises(SerializationError, match="expected 'LearnedWMP'"):
            registry.load("m", path, expected_class="LearnedWMP")
        assert registry.load("m", path, expected_class="ConstantMemoryPredictor") == 1

    def test_describe_snapshot(self):
        registry = ModelRegistry()
        registry.register("m", predictor(1.0))
        registry.register("m", predictor(2.0), promote=True)
        description = registry.describe()
        assert description["m"]["active_version"] == 2
        assert set(description["m"]["versions"]) == {1, 2}
