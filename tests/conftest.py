"""Shared fixtures for the test suite.

Dataset-producing fixtures are session-scoped: generating and "executing" a
few hundred benchmark queries takes a couple of seconds and many tests can
share the result read-only.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.dbms.catalog import Catalog, Column, Index
from repro.dbms.executor import SimulatedDBMS
from repro.workloads.generator import generate_dataset

# Hypothesis settings profiles.  Every property test in the suite runs under
# the loaded profile (a per-test ``@settings(...)`` inherits the unset fields
# from it): ``dev`` keeps the local tier-1 run fast, ``ci`` runs the full
# example budget the differential suite is accepted at.  ``print_blob`` makes
# any failure print the ``@reproduce_failure`` seed blob needed to replay it.
# Select with ``HYPOTHESIS_PROFILE=ci pytest ...`` (default: ``dev``).
settings.register_profile(
    "dev",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile(
    "ci",
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def toy_catalog() -> Catalog:
    """A small two-table star schema used by parser/planner/memory tests."""
    catalog = Catalog(name="toy")
    catalog.add_table(
        "sales",
        1_000_000,
        [
            Column("sale_id", "int", 1_000_000, 8),
            Column("item_id", "int", 10_000, 8),
            Column("store_id", "int", 50, 8, skew=0.4),
            Column("quantity", "int", 100, 4),
            Column("amount", "decimal", 50_000, 8, skew=0.3),
        ],
    )
    catalog.add_table(
        "items",
        10_000,
        [
            Column("item_id", "int", 10_000, 8),
            Column("category", "varchar", 20, 16, skew=0.5),
            Column("price", "decimal", 5_000, 8),
        ],
    )
    catalog.add_table(
        "stores",
        50,
        [
            Column("store_id", "int", 50, 8),
            Column("region", "varchar", 5, 12),
        ],
    )
    catalog.add_index(Index("idx_items_pk", "items", ("item_id",), unique=True))
    catalog.add_index(Index("idx_stores_pk", "stores", ("store_id",), unique=True))
    catalog.add_index(Index("idx_sales_item", "sales", ("item_id",)))
    return catalog


@pytest.fixture(scope="session")
def toy_dbms(toy_catalog: Catalog) -> SimulatedDBMS:
    return SimulatedDBMS(toy_catalog)


@pytest.fixture(scope="session")
def tpcds_small():
    """A small executed TPC-DS dataset shared by core-model tests.

    900 queries keeps session setup to a few seconds while leaving enough
    training workloads (72 at batch size 10) for the accuracy-sanity tests to
    be stable under the heavy-tailed memory labels.
    """
    return generate_dataset("tpcds", 900, seed=11)


@pytest.fixture(scope="session")
def job_small():
    return generate_dataset("job", 350, seed=11)


@pytest.fixture(scope="session")
def tpcc_small():
    return generate_dataset("tpcc", 400, seed=11)


@pytest.fixture(scope="session")
def regression_problem(rng: np.random.Generator):
    """A synthetic nonlinear regression problem for the ML substrate tests."""
    X = rng.uniform(-2.0, 2.0, size=(400, 5))
    y = (
        3.0 * X[:, 0]
        - 2.0 * X[:, 1] ** 2
        + 1.5 * X[:, 2] * X[:, 3]
        + 0.5 * X[:, 4]
        + rng.normal(0.0, 0.1, size=400)
    )
    return X, y


@pytest.fixture(scope="session")
def linear_problem(rng: np.random.Generator):
    """A noisy linear regression problem (exact recovery expected)."""
    X = rng.normal(size=(300, 4))
    coef = np.array([2.0, -1.0, 0.5, 3.0])
    y = X @ coef + 1.5 + rng.normal(0.0, 0.05, size=300)
    return X, y, coef


@pytest.fixture(scope="session")
def blobs(rng: np.random.Generator):
    """Three well-separated gaussian blobs for clustering tests."""
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 8.0]])
    points = []
    labels = []
    for label, center in enumerate(centers):
        points.append(center + rng.normal(0.0, 0.5, size=(60, 2)))
        labels.extend([label] * 60)
    return np.vstack(points), np.array(labels)
