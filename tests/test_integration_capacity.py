"""Tests for the capacity planner."""

import numpy as np
import pytest

from repro.core.workload import make_workloads
from repro.exceptions import InvalidParameterError
from repro.integration.capacity import CapacityPlanner
from repro.integration.predictors import ConstantMemoryPredictor, OracleMemoryPredictor


def _workloads(dataset, n=20):
    return make_workloads(dataset.test_records, 10, seed=9)[:n]


class TestPlan:
    def test_plan_covers_percentile_with_headroom(self, job_small):
        workloads = _workloads(job_small)
        planner = CapacityPlanner(OracleMemoryPredictor())
        plan = planner.plan(workloads, percentile=90.0, headroom=0.2)
        actual = np.array([w.actual_memory_mb for w in workloads])
        assert plan.percentile_mb == pytest.approx(float(np.percentile(actual, 90.0)))
        assert plan.recommended_mb >= plan.percentile_mb * 1.2 - 1e-9
        assert plan.n_workloads == len(workloads)

    def test_recommendation_never_below_peak(self, job_small):
        workloads = _workloads(job_small)
        plan = CapacityPlanner(OracleMemoryPredictor()).plan(
            workloads, percentile=50.0, headroom=0.0
        )
        assert plan.recommended_mb >= plan.peak_predicted_mb

    def test_growth_factor_scales_linearly(self, job_small):
        workloads = _workloads(job_small)
        planner = CapacityPlanner(OracleMemoryPredictor())
        base = planner.plan(workloads, growth_factor=1.0)
        grown = planner.plan(workloads, growth_factor=2.0)
        assert grown.recommended_mb == pytest.approx(2.0 * base.recommended_mb, rel=1e-9)

    def test_invalid_parameters_rejected(self, job_small):
        workloads = _workloads(job_small, n=5)
        planner = CapacityPlanner(OracleMemoryPredictor())
        with pytest.raises(InvalidParameterError):
            planner.plan(workloads, percentile=0.0)
        with pytest.raises(InvalidParameterError):
            planner.plan(workloads, headroom=-0.1)
        with pytest.raises(InvalidParameterError):
            planner.plan(workloads, growth_factor=0.0)
        with pytest.raises(InvalidParameterError):
            planner.plan([])

    def test_summary_keys(self, job_small):
        plan = CapacityPlanner(OracleMemoryPredictor()).plan(_workloads(job_small, n=6))
        assert set(plan.summary()) == {
            "recommended_mb",
            "percentile_mb",
            "peak_predicted_mb",
            "mean_predicted_mb",
        }


class TestEvaluate:
    def test_oracle_plan_rarely_exceeded(self, job_small):
        workloads = _workloads(job_small)
        planner = CapacityPlanner(OracleMemoryPredictor())
        plan = planner.plan(workloads, percentile=100.0, headroom=0.0)
        outcome = CapacityPlanner.evaluate(plan, workloads)
        assert outcome["exceed_share"] == 0.0
        assert outcome["worst_exceed_mb"] == 0.0
        assert 0.0 < outcome["mean_utilization"] <= 1.0

    def test_undersized_plan_is_exceeded(self, job_small):
        workloads = _workloads(job_small)
        tiny = CapacityPlanner(ConstantMemoryPredictor(0.001)).plan(
            workloads, headroom=0.0
        )
        outcome = CapacityPlanner.evaluate(tiny, workloads)
        assert outcome["exceed_share"] > 0.5
        assert outcome["worst_exceed_mb"] > 0.0

    def test_evaluate_rejects_empty(self, job_small):
        plan = CapacityPlanner(OracleMemoryPredictor()).plan(_workloads(job_small, n=5))
        with pytest.raises(InvalidParameterError):
            CapacityPlanner.evaluate(plan, [])
