"""Tests for the heuristic (state-of-practice) memory estimator."""

import pytest

from repro.dbms.memory import MemoryModelConfig, WorkingMemoryModel
from repro.dbms.optimizer_estimator import HeuristicEstimatorConfig, HeuristicMemoryEstimator
from repro.dbms.plan.operators import OperatorType, PlanNode
from repro.dbms.plan.planner import QueryPlanner


class TestHeuristicMemoryEstimator:
    def test_minimum_grant_enforced(self):
        estimator = HeuristicMemoryEstimator()
        trivial = PlanNode(OperatorType.RETURN, children=[PlanNode(OperatorType.TBSCAN)])
        assert estimator.estimate_mb(trivial) == pytest.approx(
            HeuristicEstimatorConfig().minimum_grant_mb
        )

    def test_grant_rounded_to_page_granule(self):
        estimator = HeuristicMemoryEstimator()
        sort = PlanNode(
            OperatorType.SORT,
            est_input_cardinality=400_000,
            est_cardinality=400_000,
            row_width=64,
        )
        estimate = estimator.estimate_mb(PlanNode(OperatorType.RETURN, children=[sort]))
        assert estimate % 4.0 == pytest.approx(0.0)

    def test_estimate_grows_with_estimated_cardinality(self):
        estimator = HeuristicMemoryEstimator()

        def sort_plan(rows: float) -> PlanNode:
            return PlanNode(
                OperatorType.RETURN,
                children=[
                    PlanNode(
                        OperatorType.SORT,
                        est_input_cardinality=rows,
                        est_cardinality=rows,
                        row_width=64,
                    )
                ],
            )

        assert estimator.estimate_mb(sort_plan(5_000_000)) > estimator.estimate_mb(
            sort_plan(50_000)
        )

    def test_wide_row_sorts_underestimated_vs_ground_truth(self):
        """The rules charge a flat per-row constant, so wide rows are undersized."""
        estimator = HeuristicMemoryEstimator()
        truth = WorkingMemoryModel(MemoryModelConfig(noise_sigma=0.0))
        wide_sort = PlanNode(
            OperatorType.SORT,
            est_input_cardinality=1_000_000,
            est_cardinality=1_000_000,
            true_input_cardinality=1_000_000,
            true_cardinality=1_000_000,
            row_width=400,
        )
        plan = PlanNode(OperatorType.RETURN, children=[wide_sort])
        assert estimator.estimate_mb(plan) < truth.peak_memory_mb(plan)

    def test_uses_estimated_not_true_cardinality(self):
        estimator = HeuristicMemoryEstimator()
        sort = PlanNode(
            OperatorType.SORT,
            est_input_cardinality=1_000,
            true_input_cardinality=10_000_000,  # reality is much bigger
            row_width=64,
        )
        plan = PlanNode(OperatorType.RETURN, children=[sort])
        # The estimate stays small because it only sees the estimated rows.
        assert estimator.estimate_mb(plan) <= 8.0

    def test_scan_only_operators_contribute_nothing(self):
        estimator = HeuristicMemoryEstimator()
        assert estimator.operator_estimate_mb(PlanNode(OperatorType.TBSCAN)) == 0.0
        assert estimator.operator_estimate_mb(PlanNode(OperatorType.FETCH)) == 0.0

    def test_estimates_positive_for_benchmark_plans(self, toy_catalog):
        planner = QueryPlanner(toy_catalog)
        estimator = HeuristicMemoryEstimator()
        plan = planner.plan_sql(
            "select category, sum(amount) from sales s, items i "
            "where s.item_id = i.item_id group by category"
        )
        assert estimator.estimate_mb(plan) >= 4.0
