"""Tests for the simulated DBMS facade and the query log."""

import pytest

from repro.dbms.executor import SimulatedDBMS
from repro.dbms.query_log import QueryLog, QueryRecord
from repro.dbms.plan.operators import PlanNode, OperatorType


class TestSimulatedDBMS:
    def test_execute_returns_complete_record(self, toy_dbms):
        record = toy_dbms.execute(
            "select sum(amount) from sales where store_id = 3", benchmark="toy"
        )
        assert record.sql.startswith("select")
        assert record.actual_memory_mb > 0.0
        assert record.optimizer_estimate_mb > 0.0
        assert record.benchmark == "toy"
        assert record.plan.op_type is OperatorType.RETURN

    def test_execution_is_deterministic_per_sql(self, toy_dbms):
        sql = "select count(*) from items where category = 'Books'"
        first = toy_dbms.execute(sql, log=False)
        second = toy_dbms.execute(sql, log=False)
        assert first.actual_memory_mb == second.actual_memory_mb

    def test_different_parameters_change_actual_memory(self, toy_dbms):
        a = toy_dbms.execute("select count(*) from sales where store_id = 1", log=False)
        b = toy_dbms.execute("select count(*) from sales where store_id = 9", log=False)
        assert a.actual_memory_mb != b.actual_memory_mb

    def test_query_log_accumulates(self, toy_catalog):
        dbms = SimulatedDBMS(toy_catalog)
        dbms.execute("select count(*) from stores")
        dbms.execute("select count(*) from items")
        assert len(dbms.query_log) == 2

    def test_log_opt_out(self, toy_catalog):
        dbms = SimulatedDBMS(toy_catalog)
        dbms.execute("select count(*) from stores", log=False)
        assert len(dbms.query_log) == 0

    def test_execute_many_preserves_order_and_seeds(self, toy_catalog):
        dbms = SimulatedDBMS(toy_catalog)
        statements = [
            "select count(*) from stores",
            "select count(*) from items",
        ]
        records = dbms.execute_many(statements, benchmark="toy", template_seeds=[4, 9])
        assert [r.template_seed for r in records] == [4, 9]
        assert [r.sql for r in records] == statements

    def test_explain_does_not_log(self, toy_catalog):
        dbms = SimulatedDBMS(toy_catalog)
        plan = dbms.explain("select count(*) from stores")
        assert plan.op_type is OperatorType.RETURN
        assert len(dbms.query_log) == 0


class TestQueryLog:
    def _record(self, memory: float) -> QueryRecord:
        return QueryRecord(
            sql="select 1 from stores",
            plan=PlanNode(OperatorType.RETURN),
            actual_memory_mb=memory,
            optimizer_estimate_mb=memory * 2,
        )

    def test_total_memory(self):
        log = QueryLog()
        log.extend([self._record(1.0), self._record(2.5)])
        assert log.total_memory_mb() == pytest.approx(3.5)

    def test_indexing_and_iteration(self):
        log = QueryLog([self._record(1.0), self._record(2.0)])
        assert log[1].actual_memory_mb == 2.0
        assert len(list(iter(log))) == 2

    def test_summary_json_roundtrip(self, tmp_path):
        log = QueryLog([self._record(1.0)])
        path = tmp_path / "log.json"
        log.to_summary_json(path)
        summary = QueryLog.summary_from_json(path)
        assert summary[0]["actual_memory_mb"] == 1.0
        assert "plan" not in summary[0]
