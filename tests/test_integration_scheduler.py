"""Tests for the round-based workload scheduler."""

import pytest

from repro.core.workload import make_workloads
from repro.exceptions import InvalidParameterError
from repro.integration.predictors import ConstantMemoryPredictor, OracleMemoryPredictor
from repro.integration.scheduler import RoundScheduler


def _workloads(dataset, n=15):
    return make_workloads(dataset.test_records, 10, seed=5)[:n]


class TestConstruction:
    def test_rejects_bad_pool_and_safety(self):
        with pytest.raises(InvalidParameterError):
            RoundScheduler(OracleMemoryPredictor(), 0.0)
        with pytest.raises(InvalidParameterError):
            RoundScheduler(OracleMemoryPredictor(), 10.0, safety_factor=-1.0)

    def test_rejects_empty_schedule(self):
        with pytest.raises(InvalidParameterError):
            RoundScheduler(OracleMemoryPredictor(), 10.0).schedule([])


class TestScheduling:
    def test_every_workload_scheduled_exactly_once(self, tpcc_small):
        workloads = _workloads(tpcc_small)
        report = RoundScheduler(OracleMemoryPredictor(), 60.0).schedule(workloads)
        scheduled = sorted(i for r in report.rounds for i in r.workload_indices)
        assert scheduled == list(range(len(workloads)))

    def test_oracle_schedule_never_overcommits(self, tpcc_small):
        workloads = _workloads(tpcc_small)
        pool = 2.0 * max(w.actual_memory_mb for w in workloads)
        report = RoundScheduler(OracleMemoryPredictor(), pool).schedule(workloads)
        assert report.overcommitted_rounds == 0
        assert report.worst_overcommit_mb == 0.0

    def test_rounds_respect_predicted_budget(self, tpcc_small):
        workloads = _workloads(tpcc_small)
        pool = 2.0 * max(w.actual_memory_mb for w in workloads)
        report = RoundScheduler(OracleMemoryPredictor(), pool).schedule(workloads)
        # Packing is done on predictions, so predicted per-round demand can
        # only exceed the pool for single-workload (oversized) rounds.
        for scheduled_round in report.rounds:
            if len(scheduled_round.workload_indices) > 1:
                assert scheduled_round.predicted_mb <= pool + 1e-9

    def test_larger_pool_never_needs_more_rounds(self, job_small):
        workloads = _workloads(job_small, n=12)
        small_pool = 1.2 * max(w.actual_memory_mb for w in workloads)
        big_pool = 4.0 * small_pool
        small = RoundScheduler(OracleMemoryPredictor(), small_pool).schedule(workloads)
        big = RoundScheduler(OracleMemoryPredictor(), big_pool).schedule(workloads)
        assert big.n_rounds <= small.n_rounds

    def test_underestimation_packs_fewer_rounds_but_overcommits(self, job_small):
        workloads = _workloads(job_small, n=12)
        pool = 1.5 * max(w.actual_memory_mb for w in workloads)
        oracle = RoundScheduler(OracleMemoryPredictor(), pool).schedule(workloads)
        optimist = RoundScheduler(ConstantMemoryPredictor(0.0), pool).schedule(workloads)
        assert optimist.n_rounds <= oracle.n_rounds
        assert optimist.overcommitted_rounds >= oracle.overcommitted_rounds

    def test_compare_includes_self_and_alternatives(self, tpcc_small):
        workloads = _workloads(tpcc_small, n=8)
        scheduler = RoundScheduler(OracleMemoryPredictor(), 60.0)
        comparison = scheduler.compare(
            workloads, {"constant": ConstantMemoryPredictor(5.0)}
        )
        assert set(comparison) == {"self", "constant"}
        for summary in comparison.values():
            assert set(summary) == {
                "rounds",
                "overcommitted_rounds",
                "worst_overcommit_mb",
                "mean_utilization",
            }
