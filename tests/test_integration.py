"""End-to-end integration tests across the substrates and the core model."""

import numpy as np
import pytest

from repro import (
    LearnedWMP,
    SingleWMP,
    SingleWMPDBMS,
    generate_dataset,
    make_workloads,
)
from repro.core.metrics import summarize_residuals


class TestEndToEndTPCDS:
    """Generate → execute → train → predict, asserting the paper's qualitative shapes."""

    @pytest.fixture(scope="class")
    def setup(self, tpcds_small):
        train, test = tpcds_small.train_records, tpcds_small.test_records
        test_workloads = make_workloads(test, 10, seed=0)
        learned = LearnedWMP(
            regressor="ridge", n_templates=25, batch_size=10, random_state=0, fast=True
        ).fit(train)
        single = SingleWMP("xgb", random_state=0, fast=True).fit(train)
        dbms = SingleWMPDBMS()
        return learned, single, dbms, test_workloads

    def test_learned_model_beats_dbms_heuristic(self, setup):
        learned, _, dbms, workloads = setup
        assert learned.evaluate(workloads)["rmse"] < dbms.evaluate(workloads)["rmse"]

    def test_single_ml_beats_dbms_heuristic(self, setup):
        _, single, dbms, workloads = setup
        assert single.evaluate(workloads)["rmse"] < dbms.evaluate(workloads)["rmse"]

    def test_ml_residuals_more_balanced_than_heuristic(self, setup):
        learned, _, dbms, workloads = setup
        actuals = np.array([w.actual_memory_mb for w in workloads])
        learned_summary = summarize_residuals(actuals, learned.predict(workloads))
        dbms_summary = summarize_residuals(actuals, dbms.predict(workloads))
        # The heuristic is skewed towards one side; the learned model is not.
        assert abs(learned_summary.skew_share_under - 0.5) <= abs(
            dbms_summary.skew_share_under - 0.5
        )

    def test_learned_histogram_regression_consistency(self, setup, tpcds_small):
        learned, _, _, _ = setup
        workload = tpcds_small.test_records[:10]
        histogram = learned.histogram(workload)
        direct = learned.regressor.predict(histogram.reshape(1, -1))[0]
        assert learned.predict_workload(workload) == pytest.approx(float(direct))


class TestEndToEndTPCC:
    def test_transactional_workloads_trainable(self, tpcc_small):
        learned = LearnedWMP(
            regressor="xgb", n_templates=10, batch_size=10, random_state=0, fast=True
        ).fit(tpcc_small.train_records)
        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)
        metrics = learned.evaluate(workloads)
        assert metrics["mape"] < 25.0

    def test_dbms_overestimates_small_transactional_queries(self, tpcc_small):
        workloads = make_workloads(tpcc_small.test_records, 10, seed=0)
        dbms = SingleWMPDBMS()
        actuals = np.array([w.actual_memory_mb for w in workloads])
        predictions = dbms.predict(workloads)
        # The minimum-grant rule makes the heuristic systematically high.
        assert np.mean(predictions > actuals) > 0.9


class TestEndToEndJOB:
    def test_join_heavy_workloads_trainable(self, job_small):
        learned = LearnedWMP(
            regressor="ridge", n_templates=30, batch_size=10, random_state=0, fast=True
        ).fit(job_small.train_records)
        workloads = make_workloads(job_small.test_records, 10, seed=0)
        predictions = learned.predict(workloads)
        assert np.all(np.isfinite(predictions))
        assert np.all(predictions > 0.0)


class TestCrossBenchmarkIsolation:
    def test_generate_dataset_is_deterministic(self):
        a = generate_dataset("tpcc", 60, seed=4)
        b = generate_dataset("tpcc", 60, seed=4)
        assert [r.sql for r in a.all_records] == [r.sql for r in b.all_records]
        assert [r.actual_memory_mb for r in a.all_records] == [
            r.actual_memory_mb for r in b.all_records
        ]

    def test_memory_scale_differs_across_benchmarks(self, tpcds_small, tpcc_small):
        tpcds_mean = np.mean([r.actual_memory_mb for r in tpcds_small.all_records])
        tpcc_mean = np.mean([r.actual_memory_mb for r in tpcc_small.all_records])
        # Analytical queries need far more working memory than transactional ones.
        assert tpcds_mean > 10 * tpcc_mean
