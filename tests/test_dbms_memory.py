"""Tests for the ground-truth working-memory model."""

import pytest

from repro.dbms.memory import MemoryModelConfig, WorkingMemoryModel
from repro.dbms.plan.operators import OperatorType, PlanNode
from repro.dbms.plan.planner import QueryPlanner


def _sort_node(rows: float, width: int = 64) -> PlanNode:
    child = PlanNode(OperatorType.TBSCAN, true_cardinality=rows, true_input_cardinality=rows, row_width=width)
    return PlanNode(
        OperatorType.SORT,
        true_input_cardinality=rows,
        true_cardinality=rows,
        est_input_cardinality=rows,
        est_cardinality=rows,
        row_width=width,
        children=[child],
    )


def _hash_join(build_rows: float, probe_rows: float, width: int = 32) -> PlanNode:
    build = PlanNode(
        OperatorType.TBSCAN,
        est_cardinality=build_rows,
        true_cardinality=build_rows,
        row_width=width,
    )
    probe = PlanNode(
        OperatorType.TBSCAN,
        est_cardinality=probe_rows,
        true_cardinality=probe_rows,
        row_width=width,
    )
    return PlanNode(
        OperatorType.HSJOIN,
        est_cardinality=probe_rows,
        true_cardinality=probe_rows,
        true_input_cardinality=build_rows + probe_rows,
        row_width=2 * width,
        children=[build, probe],
    )


class TestOperatorMemory:
    def test_sort_memory_proportional_to_input(self):
        model = WorkingMemoryModel()
        small = model.operator_memory(_sort_node(10_000)).memory_mb
        large = model.operator_memory(_sort_node(100_000)).memory_mb
        assert large == pytest.approx(10 * small, rel=0.01)

    def test_sort_memory_capped_by_sort_heap(self):
        config = MemoryModelConfig(sort_heap_mb=64.0)
        model = WorkingMemoryModel(config)
        result = model.operator_memory(_sort_node(100_000_000))
        assert result.memory_mb == pytest.approx(64.0)
        assert result.spilled

    def test_hash_join_uses_smaller_side_as_build(self):
        model = WorkingMemoryModel()
        join = _hash_join(build_rows=1_000, probe_rows=1_000_000)
        swapped = _hash_join(build_rows=1_000_000, probe_rows=1_000)
        assert model.operator_memory(join).memory_mb == pytest.approx(
            model.operator_memory(swapped).memory_mb
        )

    def test_groupby_memory_scales_with_groups(self):
        model = WorkingMemoryModel()
        small = PlanNode(OperatorType.GRPBY, true_cardinality=100, row_width=32)
        large = PlanNode(OperatorType.GRPBY, true_cardinality=100_000, row_width=32)
        assert model.operator_memory(large).memory_mb > model.operator_memory(small).memory_mb

    def test_scan_memory_is_small_constant(self):
        model = WorkingMemoryModel()
        scan = PlanNode(OperatorType.TBSCAN, true_cardinality=10_000_000)
        assert model.operator_memory(scan).memory_mb <= 1.0


class TestPeakMemory:
    def test_peak_includes_all_blocking_operators(self):
        model = WorkingMemoryModel(MemoryModelConfig(noise_sigma=0.0))
        sort = _sort_node(50_000)
        join = _hash_join(20_000, 500_000)
        combined = PlanNode(
            OperatorType.RETURN,
            children=[PlanNode(OperatorType.SORT, true_input_cardinality=50_000, row_width=64, children=[join])],
        )
        alone_join = model.peak_memory_mb(join)
        assert model.peak_memory_mb(combined) > alone_join
        assert model.peak_memory_mb(sort) > 0.0

    def test_noise_is_deterministic_per_key(self):
        model = WorkingMemoryModel()
        plan = _sort_node(10_000)
        a = model.peak_memory_mb(plan, execution_key="q1")
        b = model.peak_memory_mb(plan, execution_key="q1")
        c = model.peak_memory_mb(plan, execution_key="q2")
        assert a == b
        assert a != c

    def test_noise_bounded(self):
        config = MemoryModelConfig(noise_sigma=0.05)
        model = WorkingMemoryModel(config)
        plan = _sort_node(100_000)
        base = sum(item.memory_mb for item in model.plan_memory_breakdown(plan))
        for key in ("a", "b", "c", "d"):
            value = model.peak_memory_mb(plan, execution_key=key)
            assert 0.7 * base < value < 1.4 * base

    def test_real_plan_positive_memory(self, toy_catalog):
        planner = QueryPlanner(toy_catalog)
        model = WorkingMemoryModel()
        plan = planner.plan_sql(
            "select category, sum(amount) from sales s, items i "
            "where s.item_id = i.item_id group by category order by category"
        )
        assert model.peak_memory_mb(plan, execution_key="x") > 0.0

    def test_breakdown_covers_every_node(self):
        model = WorkingMemoryModel()
        join = _hash_join(10, 10)
        assert len(model.plan_memory_breakdown(join)) == join.node_count()
