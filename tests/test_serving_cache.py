"""Tests for the LRU+TTL cache and workload signatures."""

import pytest

from repro.core.workload import Workload
from repro.exceptions import InvalidParameterError
from repro.serving.cache import LRUTTLCache, workload_signature


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = LRUTTLCache(4)
        cache.put("a", 1.0)
        assert cache.get("a") == 1.0
        assert cache.get("b") is None
        assert cache.get("b", -1.0) == -1.0

    def test_eviction_is_least_recently_used(self):
        cache = LRUTTLCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUTTLCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes 'a'
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_capacity_bound_holds(self):
        cache = LRUTTLCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            LRUTTLCache(0)
        with pytest.raises(InvalidParameterError):
            LRUTTLCache(4, ttl_s=0.0)


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = LRUTTLCache(8, ttl_s=10.0, clock=clock)
        cache.put("a", 1.0)
        clock.advance(9.0)
        assert cache.get("a") == 1.0
        clock.advance(2.0)
        assert cache.get("a") is None
        assert cache.stats().expirations == 1
        assert len(cache) == 0

    def test_put_resets_age(self):
        clock = FakeClock()
        cache = LRUTTLCache(8, ttl_s=10.0, clock=clock)
        cache.put("a", 1.0)
        clock.advance(8.0)
        cache.put("a", 2.0)
        clock.advance(8.0)
        assert cache.get("a") == 2.0

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = LRUTTLCache(8, clock=clock)
        cache.put("a", 1.0)
        clock.advance(1e9)
        assert cache.get("a") == 1.0

    def test_put_sweeps_expired_entries_before_evicting_live_ones(self):
        """Regression: a TTL-dead entry must never cost a live entry its slot."""
        clock = FakeClock()
        cache = LRUTTLCache(2, ttl_s=10.0, clock=clock)
        cache.put("dead", 1.0)
        clock.advance(11.0)  # "dead" has expired but still occupies a slot
        cache.put("a", 2.0)
        cache.put("b", 3.0)  # would overflow: the sweep must take "dead", not "a"
        assert cache.get("a") == 2.0
        assert cache.get("b") == 3.0
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.evictions == 0
        assert stats.size == 2

    def test_stats_size_counts_only_live_entries(self):
        """Regression: ``stats().size`` used to count TTL-expired entries."""
        clock = FakeClock()
        cache = LRUTTLCache(8, ttl_s=10.0, clock=clock)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        clock.advance(11.0)
        stats = cache.stats()
        assert stats.size == 0
        assert stats.expirations == 2

    def test_live_entries_still_evicted_lru_when_nothing_expired(self):
        clock = FakeClock()
        cache = LRUTTLCache(2, ttl_s=10.0, clock=clock)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("c", 3.0)  # all live: plain LRU eviction of "a"
        assert cache.get("a") is None
        assert cache.stats().evictions == 1


class TestStats:
    def test_hit_rate(self):
        cache = LRUTTLCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(2.0 / 3.0)

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = LRUTTLCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1


class TestWorkloadSignature:
    def test_order_insensitive(self, tpcds_small):
        records = tpcds_small.test_records[:10]
        forward = workload_signature(Workload(queries=list(records)))
        backward = workload_signature(Workload(queries=list(reversed(records))))
        assert forward == backward

    def test_distinct_workloads_differ(self, tpcds_small):
        first = Workload(queries=tpcds_small.test_records[:10])
        second = Workload(queries=tpcds_small.test_records[10:20])
        assert workload_signature(first) != workload_signature(second)

    def test_accepts_plain_record_sequence(self, tpcds_small):
        records = tpcds_small.test_records[:5]
        assert workload_signature(records) == workload_signature(Workload(queries=list(records)))

    def test_signature_is_hashable(self, tpcds_small):
        {workload_signature(tpcds_small.test_records[:5]): 1.0}
