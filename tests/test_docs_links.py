"""The markdown docs must not carry broken relative links or anchors.

Runs the same checker the CI docs job uses (``tools/check_links.py``), so a
broken link fails the tier-1 suite locally before it fails CI.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_links.py"


def _run_checker(*arguments: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), *arguments],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


class TestDocsLinks:
    def test_readme_and_docs_have_no_broken_links(self):
        result = _run_checker("README.md", "docs")
        assert result.returncode == 0, result.stderr

    def test_required_docs_exist_and_are_linked_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for page in ("docs/ARCHITECTURE.md", "docs/API.md"):
            assert (REPO_ROOT / page).exists()
            assert page in readme

    def test_checker_reports_broken_links(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](./does-not-exist.md)\n")
        result = _run_checker(str(bad))
        assert result.returncode == 1
        assert "broken link" in result.stderr
