"""Tests for SQL tokenization and the text vectorizers."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.text import BagOfWordsVectorizer, TextMiningVectorizer, tokenize_sql

_QUERIES = [
    "select sum(ss_net_paid) from store_sales where ss_quantity > 10",
    "select d_year, count(*) from store_sales, date_dim where ss_sold_date_sk = d_date_sk group by d_year",
    "select c_last from customer where c_w_id = 3 and c_last = 'smith' order by c_id",
]


class TestTokenizeSql:
    def test_lowercases_identifiers_and_keywords(self):
        tokens = tokenize_sql("SELECT A FROM B")
        assert tokens == ["select", "a", "from", "b"]

    def test_string_literals_collapsed(self):
        tokens = tokenize_sql("select * from t where name = 'Alice Smith'")
        assert "strliteral" in tokens
        assert "alice" not in tokens

    def test_qualified_names_kept_whole(self):
        assert "t1.col" in tokenize_sql("select t1.col from t1")

    def test_numbers_and_operators(self):
        tokens = tokenize_sql("select a from t where b >= 10")
        assert ">=" in tokens
        assert "10" in tokens

    def test_empty_string(self):
        assert tokenize_sql("") == []


class TestBagOfWordsVectorizer:
    def test_matrix_shape(self):
        vectorizer = BagOfWordsVectorizer()
        matrix = vectorizer.fit_transform(_QUERIES)
        assert matrix.shape[0] == len(_QUERIES)
        assert matrix.shape[1] == len(vectorizer.vocabulary_)

    def test_counts_reflect_occurrences(self):
        vectorizer = BagOfWordsVectorizer()
        matrix = vectorizer.fit_transform(["select a a a from t"])
        column = vectorizer.vocabulary_["a"]
        assert matrix[0, column] == 3.0

    def test_numbers_collapse_to_num_token(self):
        vectorizer = BagOfWordsVectorizer()
        vectorizer.fit(["select a from t where b = 5 and c = 77"])
        assert "<num>" in vectorizer.vocabulary_
        assert "77" not in vectorizer.vocabulary_

    def test_max_features_limits_vocabulary(self):
        vectorizer = BagOfWordsVectorizer(max_features=5)
        vectorizer.fit(_QUERIES)
        assert len(vectorizer.vocabulary_) <= 5

    def test_unknown_tokens_ignored_at_transform(self):
        vectorizer = BagOfWordsVectorizer()
        vectorizer.fit(["select a from t"])
        matrix = vectorizer.transform(["select zzz from qqq"])
        assert matrix.sum() >= 0.0  # unknown tokens contribute nothing

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BagOfWordsVectorizer().transform(["select 1"])


class TestTextMiningVectorizer:
    def test_vocabulary_restricted_to_objects_and_clauses(self):
        vectorizer = TextMiningVectorizer(object_names={"store_sales", "ss_quantity"})
        vectorizer.fit(_QUERIES)
        vocabulary = set(vectorizer.vocabulary_)
        assert "store_sales" in vocabulary
        assert "select" in vocabulary
        # customer is not a registered object name, so it is excluded.
        assert "customer" not in vocabulary
        assert "<num>" not in vocabulary

    def test_qualified_column_matches_object_name(self):
        vectorizer = TextMiningVectorizer(object_names={"ol_i_id"})
        vectorizer.fit(["select ol.ol_i_id from order_line ol"])
        assert any("ol_i_id" in token for token in vectorizer.vocabulary_)

    def test_feature_matrix_nonnegative(self):
        vectorizer = TextMiningVectorizer(object_names={"store_sales"})
        matrix = vectorizer.fit_transform(_QUERIES)
        assert np.all(matrix >= 0.0)
