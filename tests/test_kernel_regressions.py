"""Pinned regressions: front divergences surfaced by the differential harness.

Before the three serving fronts were rewritten over the shared
:class:`~repro.serving.kernel.PipelineKernel`, each carried its own copy of
the pipeline rules, and replaying identical traces through them (see
``test_kernel_differential.py``) exposed behavioral drift.  Each test here
pins one unified behavior across every front, minimally, so a future front
(or a front-local "optimization") cannot silently diverge again:

* coalescing must work with batching disabled (the old thread front only
  coalesced inside the micro-batcher);
* an expired BYPASS request must always shed, on every front (the asyncio
  front once failed this path with a ``NameError`` instead of the typed
  ``DeadlineExceededError``);
* admission sheds are telemetry sheds but never batcher sheds — the three
  fronts used to disagree on which counter they landed in;
* a hot swap mid-batch must gate the stale write-back on every front, not
  just invalidate the cache at swap time;
* an expired request answerable from the cache is delivered late (counted
  as a deadline miss), never shed;
* EDF cuts on equal deadlines follow a *total* scheduling order (priority,
  deadline, admission seq) — they used to fall back on whatever insertion
  order the pending queue happened to hold.
"""

import threading
import time

import pytest
from oracle import make_lookup_pool

from repro.api import CachePolicy, PredictionRequest
from repro.exceptions import DeadlineExceededError
from repro.registry import ModelRegistry, ShardedModelRegistry
from repro.serving import (
    AsyncPredictionServer,
    PredictionServer,
    ServerConfig,
    ShardedPredictionServer,
)
from repro.serving.kernel import FlushBatch, PipelineKernel

POOL = make_lookup_pool(4)
FRONTS = ["thread", "asyncio", "sharded"]


def make_front(kind, model, config):
    if kind == "thread":
        return PredictionServer(model, config=config)
    if kind == "asyncio":
        return AsyncPredictionServer(model, config=config)
    registry = ShardedModelRegistry(n_shards=2)
    registry.register_replicated("default", model)
    return ShardedPredictionServer(registry, backend="thread", config=config)


def wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class GatePredictor:
    """A model whose ``predict`` blocks until the test releases it.

    ``entered`` observes "the batch is now executing on me" (so the test can
    arrange events strictly inside the execution window); ``release`` lets
    it finish.  Thread-safe: fronts call it from worker/executor threads.
    """

    def __init__(self, value: float) -> None:
        self.value = value
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def predict(self, workloads):
        self.entered.set()
        assert self.release.wait(10.0), "GatePredictor never released"
        with self._lock:
            self.calls += 1
        return [self.value] * len(workloads)

    def predict_workload(self, workload):
        return self.predict([workload])[0]


class FreshPredictor:
    """The post-swap model: answers instantly with a distinguishable value."""

    def predict(self, workloads):
        return [2.0] * len(workloads)

    def predict_workload(self, workload):
        return 2.0


@pytest.mark.parametrize("front", FRONTS)
def test_unbatched_submits_still_coalesce(front):
    """Identical concurrent requests coalesce even with batching disabled.

    The pre-kernel thread front only coalesced inside the micro-batcher, so
    ``enable_batching=False`` silently disabled singleflight too; the kernel
    registers leadership at admission, independent of batching.
    """
    gate = GatePredictor(value=7.0)
    config = ServerConfig(enable_batching=False)
    workload = POOL[0]
    with make_front(front, gate, config) as server:
        # With batching disabled the thread front executes on the caller
        # thread, so the leader must be submitted from a helper.
        leader_value = []
        leader = threading.Thread(
            target=lambda: leader_value.append(server.predict_workload(workload))
        )
        leader.start()
        assert gate.entered.wait(5.0)

        followers = [server.submit(workload) for _ in range(2)]
        assert wait_until(lambda: server.coalesced_requests == 2), front

        gate.release.set()
        leader.join(timeout=5.0)
        assert leader_value == [7.0], front
        assert [f.result(timeout=5.0) for f in followers] == [7.0, 7.0], front
        assert gate.calls == 1, front
        assert server.coalesced_requests == 2, front


@pytest.mark.parametrize("front", FRONTS)
def test_expired_bypass_always_sheds(front):
    """BYPASS + expired deadline raises ``DeadlineExceededError`` everywhere.

    A BYPASS request must never be rescued by the cache tier, so a spent
    budget has no late-delivery path: every front must shed it with the
    typed error (the asyncio front once raised ``NameError`` here).
    """
    from oracle import LookupPredictor

    workload = POOL[1]
    with make_front(front, LookupPredictor(), ServerConfig()) as server:
        server.predict_workload(workload)  # warm the cache: must not matter
        future = server.submit_request(
            PredictionRequest.of(workload, deadline_s=1e-9, cache_policy=CachePolicy.BYPASS)
        )
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=10.0)
        report = server.snapshot()
    assert report.shed_requests == 1, front
    assert report.n_errors == 0, front


@pytest.mark.parametrize("front", FRONTS)
def test_admission_sheds_count_in_telemetry_not_batcher(front):
    """A request dead on arrival is a telemetry shed, not a batcher shed.

    ``batcher_stats().shed_requests`` counts work shed *from the queue or at
    execution* — admission rejections never entered the batcher.  The three
    fronts used to disagree on which counter admission sheds landed in.
    """
    from oracle import LookupPredictor

    with make_front(front, LookupPredictor(), ServerConfig()) as server:
        future = server.submit_request(PredictionRequest.of(POOL[2], deadline_s=1e-9))
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=10.0)
        report = server.snapshot()
        batcher = server.batcher_stats()
    assert report.shed_requests == 1, front
    assert report.deadline_misses == 1, front
    assert batcher.shed_requests == 0, front
    assert batcher.batches == 0, front


@pytest.mark.parametrize("front", ["thread", "asyncio"])
def test_hot_swap_mid_batch_gates_stale_write_back(front):
    """A value computed by the pre-swap model is never written back.

    Invalidation at swap time is not enough: a batch already executing on
    the old model completes *after* the invalidation, and without generation
    gating its stale answer would repopulate the fresh cache.  (The sharded
    front delegates to these two drivers per shard.)
    """
    stale = GatePredictor(value=1.0)
    registry = ModelRegistry()
    registry.register("default", stale)
    config = ServerConfig(max_wait_s=0.0)
    cls = PredictionServer if front == "thread" else AsyncPredictionServer
    workload, other = POOL[0], POOL[3]
    with cls(registry, config=config) as server:
        first = server.submit(workload)
        assert stale.entered.wait(5.0)  # batch is executing on the old model

        registry.register("default", FreshPredictor(), promote=True)
        # The driver observes the promotion at the next admission; queue an
        # unrelated request behind the busy slot to force the sync now.
        second = server.submit(other)
        assert wait_until(lambda: server._served_version == 2), front

        stale.release.set()
        # The in-flight request still delivers its (stale) answer...
        assert first.result(timeout=5.0) == 1.0, front
        assert second.result(timeout=5.0) == 2.0, front
        # ...but the write-back was generation-gated: re-asking must execute
        # on the fresh model, not replay 1.0 from the cache.
        assert server.submit(workload).result(timeout=5.0) == 2.0, front
        assert server.cache_stats().hits == 0, front


@pytest.mark.parametrize("front", FRONTS)
def test_expired_cache_hit_delivers_late_instead_of_shedding(front):
    """An expired request the cache can answer is delivered, not shed.

    The answer is already paid for, so every front serves it and counts a
    deadline miss; shedding is reserved for requests that would otherwise
    occupy the model.
    """
    from oracle import LookupPredictor

    workload = POOL[2]
    expected = LookupPredictor().predict_workload(workload)
    with make_front(front, LookupPredictor(), ServerConfig()) as server:
        server.predict_workload(workload)  # warm the cache
        result = server.submit_request(
            PredictionRequest.of(workload, deadline_s=1e-9)
        ).result(timeout=10.0)
        report = server.snapshot()
    assert result.memory_mb == expected, front
    assert result.cache_hit, front
    assert report.shed_requests == 0, front
    assert report.deadline_misses == 1, front
    assert report.n_errors == 0, front


def _flushes(actions):
    return [a for a in actions if isinstance(a, FlushBatch)]


def _queued_same_deadline_kernel(priorities):
    """A kernel with a busy model slot and rids 1..n queued at one instant,
    all sharing one deadline, carrying ``priorities`` in admission order."""
    config = ServerConfig(enable_cache=False, max_batch_size=2, max_wait_s=10.0)
    kernel = PipelineKernel(config)
    actions = kernel.submit(0, POOL[0], now=0.0)
    actions += kernel.tick(10.0)  # window expiry flushes rid 0: slot busy
    (first,) = _flushes(actions)
    for rid, priority in enumerate(priorities, start=1):
        assert not _flushes(
            kernel.submit(rid, POOL[rid % len(POOL)], now=20.0, deadline_at=25.0,
                          priority=priority)
        )
    return kernel, first


def test_equal_deadline_ties_cut_in_admission_order():
    """EDF cuts on equal deadlines are broken by admission order, totally.

    The pre-fairness kernel ordered pending work by ``(deadline,
    enqueued_at)``; requests admitted at the same instant with the same
    deadline tied completely, and the cut fell back on the queue's
    insertion history.  The scheduling key now ends in the admission
    sequence number, so equal deadlines always cut oldest-first.
    """
    kernel, first = _queued_same_deadline_kernel([0, 0, 0])
    (cut,) = _flushes(kernel.batch_done(first.batch_id, 10.0, [10.0], 20.0))
    assert [entry.rid for entry in cut.entries] == [1, 2]


def test_priority_outranks_admission_order_on_equal_deadlines():
    """A higher-priority request wins the cut over older equal-deadline work."""
    kernel, first = _queued_same_deadline_kernel([0, 0, 1])
    (cut,) = _flushes(kernel.batch_done(first.batch_id, 10.0, [10.0], 20.0))
    assert [entry.rid for entry in cut.entries] == [3, 1]
