"""Tests for the CART regression tree."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.tree import DecisionTreeRegressor, TreeNode


class TestDecisionTreeRegressor:
    def test_fits_piecewise_constant_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [10.0], [11.0], [12.0], [13.0]])
        y = np.array([1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0])
        model = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(model.predict(X), y)

    def test_beats_mean_on_nonlinear_problem(self, regression_problem):
        X, y = regression_problem
        model = DecisionTreeRegressor(max_depth=8, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.7

    def test_max_depth_limits_tree(self, regression_problem):
        X, y = regression_problem
        shallow = DecisionTreeRegressor(max_depth=2, random_state=0).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8, random_state=0).fit(X, y)
        assert shallow.depth() <= 2
        assert deep.node_count() > shallow.node_count()

    def test_min_samples_leaf_respected(self, regression_problem):
        X, y = regression_problem
        model = DecisionTreeRegressor(min_samples_leaf=40, random_state=0).fit(X, y)

        def leaf_sizes(node: TreeNode):
            if node.is_leaf:
                yield node.n_samples
            else:
                yield from leaf_sizes(node.left)
                yield from leaf_sizes(node.right)

        assert min(leaf_sizes(model.tree_)) >= 40

    def test_constant_target_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 7.0)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.node_count() == 1
        assert np.allclose(model.predict(X), 7.0)

    def test_prediction_is_training_mean_at_root(self):
        X = np.array([[1.0], [1.0]])
        y = np.array([2.0, 4.0])
        model = DecisionTreeRegressor().fit(X, y)
        # Identical features cannot be split, so the prediction is the mean.
        assert model.predict([[1.0]])[0] == pytest.approx(3.0)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(InvalidParameterError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_max_features_sqrt(self, regression_problem):
        X, y = regression_problem
        model = DecisionTreeRegressor(max_features="sqrt", random_state=0).fit(X, y)
        assert model.score(X, y) > 0.5

    def test_max_features_invalid(self, regression_problem):
        X, y = regression_problem
        with pytest.raises(InvalidParameterError):
            DecisionTreeRegressor(max_features=1.5).fit(X, y)
        with pytest.raises(InvalidParameterError):
            DecisionTreeRegressor(max_features=0).fit(X, y)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_deterministic_with_seed(self, regression_problem):
        X, y = regression_problem
        a = DecisionTreeRegressor(max_features="sqrt", random_state=3).fit(X, y)
        b = DecisionTreeRegressor(max_features="sqrt", random_state=3).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_duplicate_feature_values_dont_crash(self):
        X = np.array([[1.0, 2.0]] * 50 + [[1.0, 3.0]] * 50)
        y = np.array([0.0] * 50 + [10.0] * 50)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)


class TestTreeNode:
    def test_leaf_properties(self):
        leaf = TreeNode(value=1.0, n_samples=5, impurity=0.0)
        assert leaf.is_leaf
        assert leaf.count_nodes() == 1
        assert leaf.depth() == 0

    def test_internal_node_counts(self):
        left = TreeNode(value=1.0, n_samples=5, impurity=0.0)
        right = TreeNode(value=2.0, n_samples=5, impurity=0.0)
        root = TreeNode(
            value=1.5, n_samples=10, impurity=0.25, feature=0, threshold=0.5,
            left=left, right=right,
        )
        assert not root.is_leaf
        assert root.count_nodes() == 3
        assert root.depth() == 1
