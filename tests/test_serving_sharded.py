"""Tests for the sharded prediction front (consistent-hash request fan-out)."""

import threading

import numpy as np
import pytest
from oracle import CountingPredictor

from repro.api import CachePolicy, PredictionRequest, Predictor
from repro.core.workload import make_workloads
from repro.exceptions import DeadlineExceededError, InvalidParameterError, ServingError
from repro.integration.predictors import ConstantMemoryPredictor
from repro.registry import ShardedModelRegistry
from repro.serving import (
    LoadGenerator,
    ServerConfig,
    ShardedPredictionServer,
)


@pytest.fixture(scope="module")
def workload_pool(tpcds_small):
    return make_workloads(tpcds_small.test_records, 10, seed=3)


def _replicated_registry(model, n_shards=3) -> ShardedModelRegistry:
    registry = ShardedModelRegistry(n_shards=n_shards)
    registry.register_replicated("default", model)
    return registry


class TestConstructionAndRouting:
    def test_requires_sharded_registry_and_known_model(self):
        with pytest.raises(InvalidParameterError, match="ShardedModelRegistry"):
            ShardedPredictionServer(object())  # type: ignore[arg-type]
        with pytest.raises(ServingError, match="unknown model"):
            ShardedPredictionServer(ShardedModelRegistry(n_shards=2))
        with pytest.raises(InvalidParameterError, match="unknown serving backend"):
            ShardedPredictionServer(
                _replicated_registry(ConstantMemoryPredictor(1.0)), backend="zmq"
            )

    def test_replicated_model_gets_a_server_per_shard(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(1.0))
        with ShardedPredictionServer(registry) as server:
            assert set(server.shard_servers) == set(registry.shard_ids())

    def test_shard_routed_model_gets_exactly_one_server(self, workload_pool):
        registry = ShardedModelRegistry(n_shards=3)
        registry.register("solo", ConstantMemoryPredictor(3.0))
        with ShardedPredictionServer(registry, model_name="solo") as server:
            assert set(server.shard_servers) == {registry.route("solo")}
            assert server.predict_workload(workload_pool[0]) == 3.0

    def test_request_routing_is_deterministic_and_spreads(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(1.0))
        with ShardedPredictionServer(registry) as server:
            routes = [server.route_request(w) for w in workload_pool[:30]]
            again = [server.route_request(w) for w in workload_pool[:30]]
        assert routes == again
        assert len(set(routes)) > 1  # fan-out actually happens

    @pytest.mark.parametrize("backend", ["thread", "asyncio"])
    def test_satisfies_the_predictor_protocol(self, backend):
        registry = _replicated_registry(ConstantMemoryPredictor(1.0))
        with ShardedPredictionServer(registry, backend=backend) as server:
            assert isinstance(server, Predictor)


class TestPredictions:
    @pytest.mark.parametrize("backend", ["thread", "asyncio"])
    def test_matches_direct_model_on_both_backends(self, backend, tpcds_small, workload_pool):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:300])
        expected = model.predict(workload_pool[:12])
        registry = _replicated_registry(model, n_shards=2)
        with ShardedPredictionServer(registry, backend=backend) as server:
            served = server.predict(workload_pool[:12])
        np.testing.assert_allclose(served, expected, rtol=1e-9)

    def test_typed_batch_carries_provenance(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(9.0))
        with ShardedPredictionServer(registry) as server:
            requests = [PredictionRequest.of(w) for w in workload_pool[:6]]
            results = server.predict_batch(requests)
            repeat = server.predict(PredictionRequest.of(workload_pool[0]))
        assert [r.memory_mb for r in results] == [9.0] * 6
        assert all(r.model_name == "default" and r.model_version == 1 for r in results)
        assert repeat.cache_hit is True  # repeats land on the shard that cached them

    def test_repeats_stay_cache_local(self, workload_pool):
        """The signature ring sends a repeated workload to the same shard."""
        registry = _replicated_registry(ConstantMemoryPredictor(2.0))
        with ShardedPredictionServer(registry) as server:
            for _ in range(3):
                for workload in workload_pool[:9]:
                    server.predict_workload(workload)
            stats = server.cache_stats()
        # 27 requests over 9 distinct workloads: everything after the first
        # pass is a hit on exactly one shard's cache.
        assert stats.hits == 18
        assert stats.misses == 9

    def test_predict_stream_preserves_order(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(5.0))
        with ShardedPredictionServer(registry) as server:
            results = list(server.predict_stream(workload_pool[:12]))
        assert results == [5.0] * 12

    def test_hot_swap_reaches_every_shard(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(10.0))
        with ShardedPredictionServer(registry) as server:
            for workload in workload_pool[:6]:
                assert server.predict_workload(workload) == 10.0
            registry.register("default", ConstantMemoryPredictor(99.0), promote=True)
            for workload in workload_pool[:6]:
                assert server.predict_workload(workload) == 99.0

    def test_submit_after_close_raises(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(1.0))
        server = ShardedPredictionServer(registry)
        server.close()
        server.close()  # idempotent
        with pytest.raises(ServingError):
            server.submit(workload_pool[0])


class TestAggregatedIntrospection:
    def test_snapshot_holds_the_whole_fleets_requests(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(1.0))
        with ShardedPredictionServer(registry) as server:
            server.predict(workload_pool[:15])
            report = server.snapshot()
        assert report.n_requests == 15
        assert report.latency_p50_ms <= report.latency_p99_ms

    def test_cache_and_batcher_stats_are_summed(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(1.0))
        config = ServerConfig(max_batch_size=16, max_wait_s=0.02)
        with ShardedPredictionServer(registry, config=config) as server:
            futures = [server.submit(w) for w in workload_pool[:15]]
            for future in futures:
                future.result(timeout=5.0)
            cache = server.cache_stats()
            batcher = server.batcher_stats()
            per_shard_requests = [
                s.batcher_stats().requests for s in server.shard_servers.values()
            ]
        assert cache.misses == 15
        assert batcher.requests == sum(per_shard_requests) == 15

    def test_stats_none_when_layers_disabled(self, workload_pool):
        registry = _replicated_registry(ConstantMemoryPredictor(1.0))
        config = ServerConfig(enable_cache=False, enable_batching=False)
        with ShardedPredictionServer(registry, config=config) as server:
            server.predict_workload(workload_pool[0])
            assert server.cache_stats() is None
            assert server.batcher_stats() is None

    def test_feature_cache_stats_come_from_the_shared_model(self, tpcds_small, workload_pool):
        from repro.core.model import LearnedWMP

        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:300])
        registry = _replicated_registry(model, n_shards=2)
        with ShardedPredictionServer(registry) as server:
            server.predict(workload_pool[:8])
            stats = server.feature_cache_stats()
            report = server.snapshot()
        assert stats is not None and stats.requests > 0
        assert report.feature_cache_hits == stats.hits

    def test_load_generator_drives_the_sharded_front(self, workload_pool):
        from repro.workloads.replay import replay_requests_from_workloads

        requests = replay_requests_from_workloads(workload_pool, 60, repeat_fraction=0.6, seed=1)
        registry = _replicated_registry(ConstantMemoryPredictor(8.0))
        with ShardedPredictionServer(registry, backend="asyncio") as server:
            report = LoadGenerator(server, requests, qps=600.0, benchmark="tpcds").run()
        assert report.n_requests == 60
        assert report.n_errors == 0


class TestDeadlines:
    @pytest.mark.parametrize("backend", ["thread", "asyncio"])
    def test_expired_requests_shed_and_counted_fleet_wide(self, backend, workload_pool):
        predictor = CountingPredictor()
        registry = _replicated_registry(predictor)
        with ShardedPredictionServer(registry, backend=backend) as server:
            live = [
                server.submit_request(PredictionRequest.of(w, deadline_s=30.0))
                for w in workload_pool[:6]
            ]
            doomed = [
                server.submit_request(
                    PredictionRequest.of(w, deadline_s=1e-9, cache_policy=CachePolicy.BYPASS)
                )
                for w in workload_pool[6:12]
            ]
            for future in live:
                assert future.result(timeout=5.0).memory_mb == predictor.value
            for future in doomed:
                with pytest.raises(DeadlineExceededError):
                    future.result(timeout=5.0)
            report = server.snapshot()
        # Misses land in the one shared accumulator, so the fleet snapshot
        # counts them exactly, across all shard servers.
        assert report.shed_requests == 6
        assert report.deadline_misses == 6
        assert report.n_errors == 0

    def test_predict_batch_deadline_clock_starts_at_submission(self, workload_pool):
        import time as _time

        class SlowShardPredictor:
            value = 4.0

            def predict_workload(self, queries):
                _time.sleep(0.25)
                return self.value

            def predict(self, workloads):
                _time.sleep(0.25)
                return np.full(len(workloads), self.value)

        registry = _replicated_registry(SlowShardPredictor(), n_shards=2)
        config = ServerConfig(max_batch_size=1, max_wait_s=0.0, enable_cache=False)
        with ShardedPredictionServer(registry, config=config) as server:
            # Pick workloads routed to the SAME shard so their batches
            # serialize behind one model worker.
            target = server.route_request(workload_pool[0])
            same_shard = [
                w for w in workload_pool if server.route_request(w) == target
            ][:3]
            if len(same_shard) < 3:  # pragma: no cover - pool is large enough
                pytest.skip("not enough workloads routed to one shard")
            requests = [PredictionRequest.of(w, deadline_s=0.4) for w in same_shard]
            with pytest.raises(DeadlineExceededError):
                server.predict_batch(requests)

    def test_merged_batcher_stats_sum_shed_requests(self):
        from repro.serving.batcher import BatcherStats
        from repro.serving.sharded import _merge_batcher_stats

        merged = _merge_batcher_stats(
            [
                BatcherStats(10, 4, 1, 3, 0, 4, shed_requests=2),
                BatcherStats(7, 2, 0, 2, 0, 5, shed_requests=3),
            ]
        )
        assert merged.shed_requests == 5
        assert merged.requests == 17
        # Executed mean excludes the shed requests.
        assert merged.mean_batch_size == pytest.approx((17 - 5) / 6)
