"""Tests for the alternative template-learning methods (Fig. 9 inputs)."""

import numpy as np
import pytest

from repro.core.template_methods import (
    TEMPLATE_METHOD_NAMES,
    BagOfWordsTemplates,
    DBSCANTemplates,
    PlanTemplates,
    RuleBasedTemplates,
    TextMiningTemplates,
    WordEmbeddingTemplates,
    make_template_method,
)
from repro.exceptions import InvalidParameterError, NotFittedError


@pytest.fixture(scope="module")
def records(tpcds_small):
    return tpcds_small.train_records[:250]


class TestFactory:
    def test_all_names_constructible(self, tpcds_small):
        for name in TEMPLATE_METHOD_NAMES:
            method = make_template_method(
                name, n_templates=8, catalog=tpcds_small.dbms.catalog, random_state=0
            )
            assert method is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_template_method("nope")

    def test_text_mining_requires_catalog(self):
        with pytest.raises(InvalidParameterError):
            make_template_method("text_mining")


@pytest.mark.parametrize(
    "factory",
    [
        lambda catalog: PlanTemplates(8, random_state=0),
        lambda catalog: RuleBasedTemplates(8),
        lambda catalog: BagOfWordsTemplates(8, random_state=0),
        lambda catalog: TextMiningTemplates(catalog, 8, random_state=0),
        lambda catalog: WordEmbeddingTemplates(8, embedding_dim=8, random_state=0),
        lambda catalog: DBSCANTemplates(eps=1.5, min_samples=4),
    ],
    ids=["plan", "rule", "bow", "text_mining", "embedding", "dbscan"],
)
class TestTemplateMethodContract:
    """Every method must satisfy the fit/assign/k contract used by Algorithm 2."""

    def test_assignments_within_k(self, factory, records, tpcds_small):
        method = factory(tpcds_small.dbms.catalog)
        method.fit(records)
        assignments = method.assign(records)
        assert assignments.shape == (len(records),)
        assert assignments.min() >= 0
        assert assignments.max() < method.k

    def test_assignment_deterministic(self, factory, records, tpcds_small):
        method = factory(tpcds_small.dbms.catalog)
        method.fit(records)
        assert np.array_equal(method.assign(records[:40]), method.assign(records[:40]))

    def test_unseen_queries_assignable(self, factory, records, tpcds_small):
        method = factory(tpcds_small.dbms.catalog)
        method.fit(records)
        unseen = tpcds_small.test_records[:30]
        assignments = method.assign(unseen)
        assert assignments.min() >= 0
        assert assignments.max() < method.k


class TestRuleBasedTemplates:
    def test_same_shape_same_rule(self, toy_dbms):
        a = toy_dbms.execute("select count(*) from sales where store_id = 1", log=False)
        b = toy_dbms.execute("select count(*) from sales where store_id = 2", log=False)
        method = RuleBasedTemplates().fit([a, b])
        labels = method.assign([a, b])
        assert labels[0] == labels[1]

    def test_different_verb_different_rule(self, toy_dbms):
        select = toy_dbms.execute("select count(*) from stores", log=False)
        update = toy_dbms.execute("update stores set region = 'X' where store_id = 1", log=False)
        method = RuleBasedTemplates().fit([select, update])
        labels = method.assign([select, update])
        assert labels[0] != labels[1]

    def test_unseen_rule_falls_back(self, toy_dbms):
        select = toy_dbms.execute("select count(*) from stores", log=False)
        method = RuleBasedTemplates().fit([select])
        unseen = toy_dbms.execute(
            "select region, count(*) from stores group by region order by region", log=False
        )
        assert method.assign([unseen])[0] == 0

    def test_not_fitted_raises(self, toy_dbms):
        record = toy_dbms.execute("select count(*) from stores", log=False)
        with pytest.raises(NotFittedError):
            RuleBasedTemplates().assign([record])


class TestDBSCANTemplates:
    def test_noise_bucket_is_last(self, records):
        method = DBSCANTemplates(eps=0.5, min_samples=3)
        method.fit(records)
        assignments = method.assign(records)
        assert assignments.max() <= method.k - 1
