"""Tests for the MLP regressor and its three solvers."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.mlp import MLPRegressor, PAPER_HIDDEN_LAYERS


class TestMLPRegressor:
    def test_learns_linear_function_with_identity_activation(self, linear_problem):
        X, y, _ = linear_problem
        model = MLPRegressor(
            (8,), activation="identity", solver="lbfgs", max_iter=200, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.98

    def test_learns_nonlinear_function_with_relu(self, regression_problem):
        X, y = regression_problem
        model = MLPRegressor(
            (64, 32), activation="relu", solver="lbfgs", max_iter=400, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.8

    @pytest.mark.parametrize("solver", ["sgd", "adam", "lbfgs"])
    def test_all_solvers_beat_predicting_the_mean(self, solver, linear_problem):
        X, y, _ = linear_problem
        model = MLPRegressor(
            (16,),
            activation="identity",
            solver=solver,
            max_iter=150,
            learning_rate_init=1e-2,
            random_state=0,
        ).fit(X, y)
        assert model.score(X, y) > 0.5

    def test_paper_architecture_constant(self):
        assert PAPER_HIDDEN_LAYERS == (48, 39, 27, 16, 7, 5)

    def test_paper_architecture_trains(self, regression_problem):
        X, y = regression_problem
        model = MLPRegressor(
            PAPER_HIDDEN_LAYERS, solver="lbfgs", max_iter=150, random_state=0
        ).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_loss_curve_recorded_and_decreasing(self, linear_problem):
        X, y, _ = linear_problem
        model = MLPRegressor((8,), solver="adam", max_iter=50, random_state=0).fit(X, y)
        assert len(model.loss_curve_) > 1
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_l2_penalty_reduces_weight_norm(self, linear_problem):
        X, y, _ = linear_problem
        loose = MLPRegressor((16,), alpha=0.0, solver="lbfgs", max_iter=200, random_state=0).fit(X, y)
        tight = MLPRegressor((16,), alpha=50.0, solver="lbfgs", max_iter=200, random_state=0).fit(X, y)
        norm = lambda model: sum(float(np.sum(W**2)) for W in model.coefs_)  # noqa: E731
        assert norm(tight) < norm(loose)

    def test_parameter_count(self, linear_problem):
        X, y, _ = linear_problem
        model = MLPRegressor((8, 4), solver="lbfgs", max_iter=20, random_state=0).fit(X, y)
        n_features = X.shape[1]
        expected = (n_features * 8 + 8) + (8 * 4 + 4) + (4 * 1 + 1)
        assert model.parameter_count() == expected

    def test_predictions_on_original_scale(self, rng):
        # Targets in the hundreds of MB range must come back on that scale.
        X = rng.normal(size=(200, 3))
        y = 500.0 + 100.0 * X[:, 0]
        model = MLPRegressor((8,), activation="identity", solver="lbfgs", max_iter=200, random_state=0).fit(X, y)
        assert 300.0 < model.predict(X).mean() < 700.0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            MLPRegressor(activation="tanh")
        with pytest.raises(InvalidParameterError):
            MLPRegressor(solver="rmsprop")
        with pytest.raises(InvalidParameterError):
            MLPRegressor(alpha=-0.1)
        with pytest.raises(InvalidParameterError):
            MLPRegressor(max_iter=0)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict([[0.0]])

    def test_reproducible_with_seed(self, linear_problem):
        X, y, _ = linear_problem
        a = MLPRegressor((8,), solver="adam", max_iter=30, random_state=7).fit(X, y)
        b = MLPRegressor((8,), solver="adam", max_iter=30, random_state=7).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_early_stopping_respects_patience(self, linear_problem):
        X, y, _ = linear_problem
        model = MLPRegressor(
            (4,),
            solver="adam",
            max_iter=500,
            tol=1e-1,  # coarse tolerance forces an early stop
            n_iter_no_change=3,
            random_state=0,
        ).fit(X, y)
        assert model.n_iter_ < 500
