"""Tests for the unified prediction API (repro.api).

Covers the typed request/result objects, the Predictor protocol and its
coercion, cache-policy/provenance semantics, and the acceptance criterion of
the redesign: admission control and the round scheduler make *identical*
decisions whether they are handed a direct model, a ``CachedPredictor`` or a
``PredictionServer``.
"""

import pytest

from repro.api import (
    CachePolicy,
    DirectPredictor,
    PredictionRequest,
    PredictionResult,
    Predictor,
    as_predictor,
    predict_values,
)
from repro.core.model import LearnedWMP
from repro.core.workload import Workload, make_workloads
from repro.exceptions import InvalidParameterError
from repro.integration.admission import AdmissionController
from repro.integration.capacity import CapacityPlanner
from repro.integration.predictors import CachedPredictor, ConstantMemoryPredictor
from repro.integration.scheduler import RoundScheduler
from repro.integration.simulation import ConcurrentExecutionSimulator
from repro.serving import PredictionServer, ServerConfig


@pytest.fixture(scope="module")
def fitted_model(tpcds_small):
    model = LearnedWMP(
        regressor="ridge", n_templates=16, batch_size=10, random_state=7, fast=True
    )
    model.fit(tpcds_small.train_records)
    return model


@pytest.fixture(scope="module")
def window(tpcds_small):
    return make_workloads(tpcds_small.test_records, 10, seed=7)


class TestPredictionRequest:
    def test_of_coerces_query_sequences(self, window):
        request = PredictionRequest.of(window[0].queries)
        assert isinstance(request.workload, Workload)
        assert request.workload.queries == list(window[0].queries)

    def test_of_passes_workloads_through(self, window):
        request = PredictionRequest.of(window[0])
        assert request.workload is window[0]

    def test_request_ids_are_generated_and_unique(self, window):
        a = PredictionRequest.of(window[0])
        b = PredictionRequest.of(window[0])
        assert a.request_id != b.request_id

    def test_explicit_request_id_is_kept(self, window):
        assert PredictionRequest.of(window[0], request_id="r-1").request_id == "r-1"

    def test_rejects_non_workload(self):
        with pytest.raises(InvalidParameterError):
            PredictionRequest(workload="not a workload")  # type: ignore[arg-type]

    def test_rejects_non_positive_deadline(self, window):
        with pytest.raises(InvalidParameterError):
            PredictionRequest.of(window[0], deadline_s=0.0)

    def test_requests_are_frozen(self, window):
        request = PredictionRequest.of(window[0])
        with pytest.raises(AttributeError):
            request.deadline_s = 1.0  # type: ignore[misc]


class TestPredictionResult:
    def test_float_conversion(self):
        result = PredictionResult(memory_mb=42.5, request_id="r")
        assert float(result) == 42.5

    def test_with_provenance_replaces_fields(self):
        result = PredictionResult(memory_mb=1.0, request_id="r")
        updated = result.with_provenance(cache_hit=True, model_version=3)
        assert updated.cache_hit and updated.model_version == 3
        assert not result.cache_hit


class TestCoercion:
    def test_direct_model_is_wrapped(self, fitted_model):
        predictor = as_predictor(fitted_model)
        assert isinstance(predictor, DirectPredictor)
        assert isinstance(predictor, Predictor)

    def test_adapter_passes_through(self, fitted_model):
        predictor = as_predictor(fitted_model)
        assert as_predictor(predictor) is predictor

    def test_server_passes_through_uncoerced(self, fitted_model):
        with PredictionServer(fitted_model) as server:
            assert isinstance(server, Predictor)
            assert as_predictor(server) is server

    def test_rejects_non_predictors(self):
        with pytest.raises(InvalidParameterError):
            as_predictor(object())

    def test_adapter_keeps_legacy_surface(self, window):
        predictor = as_predictor(ConstantMemoryPredictor(64.0))
        assert predictor.predict_workload(window[0]) == 64.0
        assert predict_values(predictor, list(window[:3])) == [64.0, 64.0, 64.0]


class TestDirectPredictor:
    def test_result_carries_model_identity(self, fitted_model, window):
        result = as_predictor(fitted_model).predict(PredictionRequest.of(window[0]))
        assert result.model_name == "LearnedWMP"
        assert result.model_version is None
        assert result.memory_mb > 0.0
        assert result.feature_cache_active  # memoized featurizer is the default

    def test_explicit_identity_overrides(self, fitted_model, window):
        predictor = as_predictor(fitted_model, name="tpcds", version=4)
        result = predictor.predict(PredictionRequest.of(window[0]))
        assert (result.model_name, result.model_version) == ("tpcds", 4)

    def test_batch_matches_vectorized_model(self, fitted_model, window):
        results = as_predictor(fitted_model).predict_batch(
            [PredictionRequest.of(w) for w in window]
        )
        expected = fitted_model.predict(list(window))
        assert [r.memory_mb for r in results] == pytest.approx(list(expected))
        assert [r.request_id for r in results] == [
            r.request_id for r in results
        ]  # ids echo in order

    def test_empty_batch(self, fitted_model):
        assert as_predictor(fitted_model).predict_batch([]) == []


class TestCachedPredictorProvenance:
    def test_cache_hit_flag_tracks_cache_state(self, fitted_model, window):
        cached = CachedPredictor(fitted_model)
        predictor = as_predictor(cached)
        first = predictor.predict(PredictionRequest.of(window[0]))
        second = predictor.predict(PredictionRequest.of(window[0]))
        assert not first.cache_hit
        assert second.cache_hit
        assert second.memory_mb == first.memory_mb

    def test_bypass_policy_reaches_the_model(self, fitted_model, window):
        cached = CachedPredictor(fitted_model)
        predictor = as_predictor(cached)
        predictor.predict(PredictionRequest.of(window[0]))
        hits_before = cached.cache_stats().hits
        result = predictor.predict(
            PredictionRequest.of(window[0], cache_policy=CachePolicy.BYPASS)
        )
        assert not result.cache_hit
        assert cached.cache_stats().hits == hits_before  # cache was not consulted

    def test_bypass_matches_cached_value(self, fitted_model, window):
        cached = CachedPredictor(fitted_model)
        predictor = as_predictor(cached)
        default = predictor.predict(PredictionRequest.of(window[0]))
        bypass = predictor.predict(
            PredictionRequest.of(window[0], cache_policy=CachePolicy.BYPASS)
        )
        assert bypass.memory_mb == pytest.approx(default.memory_mb)


class TestServedPredictions:
    def test_result_carries_registry_identity(self, fitted_model, window):
        from repro.registry import ModelRegistry

        registry = ModelRegistry()
        registry.register("tpcds", fitted_model)
        with PredictionServer(registry, model_name="tpcds") as server:
            result = server.predict(PredictionRequest.of(window[0]))
            assert isinstance(result, PredictionResult)
            assert result.model_name == "tpcds"
            assert result.model_version == 1
            assert result.feature_cache_active

    def test_cache_hit_provenance(self, fitted_model, window):
        with PredictionServer(fitted_model) as server:
            first = server.predict(PredictionRequest.of(window[0]))
            second = server.predict(PredictionRequest.of(window[0]))
            assert not first.cache_hit
            assert second.cache_hit
            assert second.memory_mb == first.memory_mb

    def test_bypass_policy_skips_the_prediction_cache(self, fitted_model, window):
        with PredictionServer(fitted_model) as server:
            server.predict(PredictionRequest.of(window[0]))
            bypass = server.predict(
                PredictionRequest.of(window[0], cache_policy=CachePolicy.BYPASS)
            )
            assert not bypass.cache_hit

    def test_missed_deadline_raises_serving_error(self, window):
        import threading

        from repro.exceptions import ServingError

        release = threading.Event()

        class SlowPredictor:
            def predict_workload(self, queries):
                release.wait(timeout=5.0)
                return 1.0

        config = ServerConfig(enable_cache=False)
        with PredictionServer(SlowPredictor(), config=config) as server:
            try:
                with pytest.raises(ServingError, match="deadline"):
                    server.predict(PredictionRequest.of(window[0], deadline_s=0.05))
            finally:
                release.set()

    def test_legacy_batch_convention_still_works(self, fitted_model, window):
        with PredictionServer(fitted_model) as server:
            values = server.predict(list(window[:5]))
            assert len(values) == 5

    def test_result_version_follows_promotion(self, fitted_model, window):
        from repro.registry import ModelRegistry

        registry = ModelRegistry()
        registry.register("m", fitted_model)
        registry.register("m", ConstantMemoryPredictor(7.0))
        with PredictionServer(registry, model_name="m") as server:
            before = server.predict(PredictionRequest.of(window[0]))
            registry.promote("m", 2)
            after = server.predict(PredictionRequest.of(window[0]))
            assert before.model_version == 1
            assert after.model_version == 2
            assert after.memory_mb == 7.0


class TestProtocolParity:
    """Acceptance criterion: admission/scheduler decisions are identical for a
    direct model, a CachedPredictor and a PredictionServer."""

    def _predictor_variants(self, model):
        yield "direct", model, None
        yield "cached", CachedPredictor(model), None
        server = PredictionServer(
            model, config=ServerConfig(max_batch_size=64, max_wait_s=0.002)
        )
        yield "served", server, server

    def test_admission_and_scheduler_decisions_identical(self, fitted_model, window):
        pool_mb = 3.0 * max(
            float(sum(w.actual_memory_mb or 0.0 for w in window)) / len(window), 1.0
        )
        admission_summaries = {}
        schedule_summaries = {}
        for label, predictor, server in self._predictor_variants(fitted_model):
            try:
                admission_summaries[label] = (
                    AdmissionController(predictor, pool_mb).run(window).summary()
                )
                schedule_summaries[label] = (
                    RoundScheduler(predictor, pool_mb).schedule(window).summary()
                )
            finally:
                if server is not None:
                    server.close()
        assert admission_summaries["cached"] == admission_summaries["direct"]
        assert admission_summaries["served"] == admission_summaries["direct"]
        assert schedule_summaries["cached"] == schedule_summaries["direct"]
        assert schedule_summaries["served"] == schedule_summaries["direct"]

    def test_simulation_accepts_any_predictor(self, fitted_model, window):
        pool_mb = 4.0 * max(
            float(sum(w.actual_memory_mb or 0.0 for w in window)) / len(window), 1.0
        )
        simulator = ConcurrentExecutionSimulator(pool_mb)
        direct = simulator.run(window[:8], fitted_model)
        with PredictionServer(fitted_model) as server:
            served = simulator.run(window[:8], server)
        assert served.summary() == direct.summary()

    def test_capacity_planner_accepts_any_predictor(self, fitted_model, window):
        direct_plan = CapacityPlanner(fitted_model).plan(window)
        with PredictionServer(fitted_model) as server:
            served_plan = CapacityPlanner(server).plan(window)
        assert served_plan.recommended_mb == pytest.approx(direct_plan.recommended_mb)

    def test_parity_compares_typed_results(self, fitted_model, window):
        """Server-vs-direct parity expressed over PredictionResult objects."""
        requests = [PredictionRequest.of(w) for w in window[:10]]
        direct_results = as_predictor(fitted_model).predict_batch(requests)
        with PredictionServer(fitted_model) as server:
            served_results = server.predict_batch(
                [
                    PredictionRequest.of(w, cache_policy=CachePolicy.BYPASS)
                    for w in window[:10]
                ]
            )
        for direct, served in zip(direct_results, served_results):
            assert served.memory_mb == pytest.approx(direct.memory_mb)
            assert served.model_version == 1
            assert direct.model_version is None
