"""Tests for variable-length workload construction and its use with LearnedWMP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import LearnedWMP
from repro.core.workload import make_variable_workloads, make_workloads
from repro.exceptions import WorkloadError


class TestMakeVariableWorkloads:
    def test_every_record_is_used_exactly_once(self, tpcc_small):
        records = tpcc_small.train_records
        workloads = make_variable_workloads(records, (5, 15), seed=1)
        assert sum(len(w) for w in workloads) == len(records)
        seen = {id(record) for workload in workloads for record in workload.queries}
        assert len(seen) == len(records)

    def test_sizes_respect_the_range(self, tpcc_small):
        workloads = make_variable_workloads(tpcc_small.train_records, (5, 15), seed=1)
        sizes = [len(w) for w in workloads]
        # Every batch is at least the minimum; the last may have absorbed a
        # small remainder so only bound the maximum loosely.
        assert min(sizes) >= 5
        assert max(sizes) <= 15 + 4
        assert len(set(sizes)) > 1  # the sizes actually vary

    def test_labels_are_sums_of_members(self, tpcc_small):
        workloads = make_variable_workloads(tpcc_small.train_records[:100], (3, 7), seed=2)
        for workload in workloads:
            expected = sum(record.actual_memory_mb for record in workload.queries)
            assert workload.actual_memory_mb == pytest.approx(expected)

    def test_deterministic_for_same_seed(self, tpcc_small):
        records = tpcc_small.train_records[:200]
        a = make_variable_workloads(records, (5, 15), seed=9)
        b = make_variable_workloads(records, (5, 15), seed=9)
        assert [len(w) for w in a] == [len(w) for w in b]
        assert all(x.queries[0].sql == y.queries[0].sql for x, y in zip(a, b))

    def test_invalid_inputs_rejected(self, tpcc_small):
        with pytest.raises(WorkloadError):
            make_variable_workloads([], (5, 15))
        with pytest.raises(WorkloadError):
            make_variable_workloads(tpcc_small.train_records[:10], (0, 5))
        with pytest.raises(WorkloadError):
            make_variable_workloads(tpcc_small.train_records[:10], (7, 3))

    @settings(max_examples=25, deadline=None)
    @given(
        low=st.integers(min_value=1, max_value=6),
        extra=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_partition_property(self, low, extra, seed, tpcc_small):
        """For any size range and seed, the workloads partition the records."""
        records = tpcc_small.train_records[:120]
        workloads = make_variable_workloads(records, (low, low + extra), seed=seed)
        assert sum(len(w) for w in workloads) == len(records)
        assert all(len(w) >= min(low, len(records)) for w in workloads)


class TestVariableLengthTraining:
    def test_model_trains_and_predicts_on_variable_workloads(self, tpcds_small):
        """The paper's variable-length extension: train on mixed batch sizes."""
        train = make_variable_workloads(tpcds_small.train_records, (5, 15), seed=4)
        test = make_variable_workloads(tpcds_small.test_records, (5, 15), seed=5)
        model = LearnedWMP(regressor="xgb", n_templates=20, random_state=0, fast=True)
        model.fit_workloads(train)
        predictions = model.predict(test)
        assert predictions.shape == (len(test),)
        assert np.all(np.isfinite(predictions))
        metrics = model.evaluate(test)
        # Sanity: the model clearly tracks the scale of the demand.
        actual = np.array([w.actual_memory_mb for w in test])
        assert metrics["rmse"] < np.sqrt(np.mean((actual - actual.mean()) ** 2)) * 1.5
