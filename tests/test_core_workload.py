"""Tests for workload batching and labels."""

import numpy as np
import pytest

from repro.core.workload import DEFAULT_BATCH_SIZE, Workload, make_workloads, workload_targets
from repro.exceptions import WorkloadError


class TestWorkload:
    def test_label_is_sum_of_query_memory(self, tpcds_small):
        queries = tpcds_small.train_records[:5]
        workload = Workload(queries=list(queries))
        assert workload.actual_memory_mb == pytest.approx(
            sum(q.actual_memory_mb for q in queries)
        )

    def test_explicit_label_preserved(self, tpcds_small):
        workload = Workload(queries=list(tpcds_small.train_records[:3]), actual_memory_mb=42.0)
        assert workload.actual_memory_mb == 42.0

    def test_optimizer_estimate_sums_heuristic_estimates(self, tpcds_small):
        queries = tpcds_small.train_records[:4]
        workload = Workload(queries=list(queries))
        assert workload.optimizer_estimate_mb == pytest.approx(
            sum(q.optimizer_estimate_mb for q in queries)
        )

    def test_len_and_iter(self, tpcds_small):
        workload = Workload(queries=list(tpcds_small.train_records[:7]))
        assert len(workload) == 7
        assert len(list(workload)) == 7


class TestMakeWorkloads:
    def test_fixed_size_batches(self, tpcds_small):
        workloads = make_workloads(tpcds_small.train_records, 10, seed=0)
        assert all(len(w) == 10 for w in workloads)
        assert len(workloads) == len(tpcds_small.train_records) // 10

    def test_drop_last_false_keeps_remainder(self, tpcds_small):
        records = tpcds_small.train_records[:25]
        workloads = make_workloads(records, 10, seed=0, drop_last=False)
        assert [len(w) for w in workloads] == [10, 10, 5]

    def test_every_query_appears_at_most_once(self, tpcds_small):
        records = tpcds_small.train_records[:40]
        workloads = make_workloads(records, 10, seed=1)
        seen = [id(q) for w in workloads for q in w.queries]
        assert len(seen) == len(set(seen))

    def test_shuffle_reproducible(self, tpcds_small):
        records = tpcds_small.train_records[:50]
        a = make_workloads(records, 10, seed=5)
        b = make_workloads(records, 10, seed=5)
        assert [[q.sql for q in w.queries] for w in a] == [[q.sql for q in w.queries] for w in b]

    def test_no_seed_keeps_order(self, tpcds_small):
        records = tpcds_small.train_records[:20]
        workloads = make_workloads(records, 10)
        assert workloads[0].queries[0] is records[0]

    def test_invalid_batch_size(self, tpcds_small):
        with pytest.raises(WorkloadError):
            make_workloads(tpcds_small.train_records, 0)

    def test_empty_records_rejected(self):
        with pytest.raises(WorkloadError):
            make_workloads([], 10)

    def test_batch_larger_than_corpus_rejected(self, tpcds_small):
        with pytest.raises(WorkloadError):
            make_workloads(tpcds_small.train_records[:5], 10)

    def test_default_batch_size_constant(self):
        assert DEFAULT_BATCH_SIZE == 10


class TestWorkloadTargets:
    def test_vector_matches_labels(self, tpcds_small):
        workloads = make_workloads(tpcds_small.train_records[:30], 10, seed=0)
        targets = workload_targets(workloads)
        assert targets.shape == (3,)
        assert np.all(targets > 0.0)
