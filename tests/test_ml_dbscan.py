"""Tests for DBSCAN clustering."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.ml.dbscan import DBSCAN


class TestDBSCAN:
    def test_finds_dense_blobs(self, blobs):
        X, truth = blobs
        labels = DBSCAN(eps=1.5, min_samples=4).fit_predict(X)
        clusters = set(labels) - {-1}
        assert len(clusters) == 3

    def test_isolated_point_is_noise(self):
        X = np.vstack(
            [
                np.random.default_rng(0).normal(0.0, 0.1, size=(30, 2)),
                np.array([[100.0, 100.0]]),
            ]
        )
        labels = DBSCAN(eps=0.5, min_samples=3).fit_predict(X)
        assert labels[-1] == -1

    def test_all_noise_when_eps_tiny(self, blobs):
        X, _ = blobs
        labels = DBSCAN(eps=1e-6, min_samples=3).fit_predict(X)
        assert set(labels) == {-1}

    def test_single_cluster_when_eps_huge(self, blobs):
        X, _ = blobs
        labels = DBSCAN(eps=1e3, min_samples=3).fit_predict(X)
        assert set(labels) == {0}

    def test_predict_assigns_new_points_to_nearest_core(self, blobs):
        X, truth = blobs
        model = DBSCAN(eps=1.5, min_samples=4)
        model.fit(X)
        # A point near the first blob centre should get the same cluster as
        # the blob's training points.
        blob0_label = model.labels_[truth == 0][0]
        prediction = model.predict(np.array([[0.2, -0.1]]))
        assert prediction[0] == blob0_label

    def test_predict_far_point_is_noise(self, blobs):
        X, _ = blobs
        model = DBSCAN(eps=1.5, min_samples=4)
        model.fit(X)
        assert model.predict(np.array([[500.0, 500.0]]))[0] == -1

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            DBSCAN(eps=0.0)
        with pytest.raises(InvalidParameterError):
            DBSCAN(min_samples=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(InvalidParameterError):
            DBSCAN().predict(np.array([[0.0, 0.0]]))

    def test_core_sample_indices_are_sorted_unique(self, blobs):
        X, _ = blobs
        model = DBSCAN(eps=1.5, min_samples=4)
        model.fit(X)
        core = model.core_sample_indices_
        assert np.array_equal(core, np.unique(core))
