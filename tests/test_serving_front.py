"""Unit coverage for :mod:`repro.serving.front` — the shared facade layer.

The serving fronts (thread, asyncio, sharded) were always exercised
end-to-end, which leaves the shared machinery they inherit — the
:class:`~repro.serving.front.ServingFrontBase` protocol facade, the
:class:`~repro.serving.front.KernelDriverBase` construction/stats layer,
and the deadline-budget helpers — covered only incidentally.  These tests
pin that layer directly, against a minimal synchronous front double, so a
facade regression is attributed to the facade rather than to whichever
driver happened to trip over it first.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest
from oracle import LookupPredictor, make_lookup_pool

from repro.api import PredictionRequest, PredictionResult
from repro.core.features import FeatureCacheStats
from repro.core.workload import Workload
from repro.exceptions import DeadlineExceededError, UnknownModelError
from repro.registry import ModelRegistry
from repro.serving.front import (
    DEFAULT_MODEL_NAME,
    KernelDriverBase,
    ServingFrontBase,
    await_within_budget,
    submission_deadline,
)
from repro.serving.kernel import ServerConfig
from repro.serving.telemetry import ServingTelemetry

POOL = make_lookup_pool(6)


# -- deadline helpers ------------------------------------------------------------------


class TestSubmissionDeadline:
    def test_no_deadline_maps_to_none(self):
        assert submission_deadline(PredictionRequest.of(POOL[0])) is None

    def test_deadline_is_absolute_from_now(self):
        before = time.monotonic()
        deadline_at = submission_deadline(PredictionRequest.of(POOL[0], deadline_s=5.0))
        after = time.monotonic()
        assert before + 5.0 <= deadline_at <= after + 5.0


class TestAwaitWithinBudget:
    def test_resolved_future_returned_even_with_spent_budget(self):
        """An answer that is already paid for is delivered, never timed out."""
        request = PredictionRequest.of(POOL[0], deadline_s=5.0)
        future: "Future[PredictionResult]" = Future()
        result = PredictionResult(memory_mb=1.0, request_id=request.request_id)
        future.set_result(result)
        assert await_within_budget(request, future, time.monotonic() - 1.0) is result

    def test_unresolved_future_raises_typed_error_at_expiry(self):
        request = PredictionRequest.of(POOL[0], deadline_s=0.01)
        future: "Future[PredictionResult]" = Future()
        with pytest.raises(DeadlineExceededError, match=request.request_id):
            await_within_budget(request, future, time.monotonic() + 0.01)
        # Only the wait is abandoned: the pipeline still owns the future.
        assert not future.cancelled()

    def test_missing_deadline_at_falls_back_to_fresh_budget(self):
        request = PredictionRequest.of(POOL[0], deadline_s=0.01)
        with pytest.raises(DeadlineExceededError):
            await_within_budget(request, Future(), None)

    def test_no_deadline_waits_indefinitely(self):
        request = PredictionRequest.of(POOL[0])
        future: "Future[PredictionResult]" = Future()
        result = PredictionResult(memory_mb=2.0, request_id=request.request_id)
        timer = threading.Timer(0.02, future.set_result, args=(result,))
        timer.start()
        try:
            assert await_within_budget(request, future, None) is result
        finally:
            timer.cancel()


# -- the protocol facade ---------------------------------------------------------------


class SyncFront(ServingFrontBase):
    """A minimal front: both submission primitives answer synchronously.

    Records every submitted workload so window/ordering behavior of the
    facade is observable without threads or a kernel.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.telemetry = ServingTelemetry()
        self.model = LookupPredictor()
        self.submitted: list[Workload] = []
        self.closed = False

    def submit(self, queries, *, signature=None) -> "Future[float]":
        workload = self._as_workload(queries)
        self.submitted.append(workload)
        future: "Future[float]" = Future()
        future.set_result(self.model.predict_workload(workload))
        return future

    def submit_request(self, request, *, signature=None) -> "Future[PredictionResult]":
        self.submitted.append(request.workload)
        future: "Future[PredictionResult]" = Future()
        future.set_result(
            PredictionResult(
                memory_mb=self.model.predict_workload(request.workload),
                request_id=request.request_id,
            )
        )
        return future

    def feature_cache_stats(self):
        return None

    def close(self) -> None:
        self.closed = True


class TestServingFrontBase:
    def test_as_workload_passes_workloads_through_and_wraps_queries(self):
        assert SyncFront._as_workload(POOL[0]) is POOL[0]
        wrapped = SyncFront._as_workload(POOL[1].queries)
        assert isinstance(wrapped, Workload)
        assert wrapped.queries == list(POOL[1].queries)

    def test_predict_workload_blocks_on_submit(self):
        assert SyncFront().predict_workload(POOL[2]) == 30.0

    def test_predict_legacy_vectorized_form(self):
        values = SyncFront().predict(POOL[:4])
        assert isinstance(values, np.ndarray)
        np.testing.assert_allclose(values, [10.0, 20.0, 30.0, 40.0])

    def test_predict_typed_form(self):
        request = PredictionRequest.of(POOL[3])
        result = SyncFront().predict(request)
        assert isinstance(result, PredictionResult)
        assert result.memory_mb == 40.0
        assert result.request_id == request.request_id

    def test_predict_batch_answers_in_request_order(self):
        requests = [PredictionRequest.of(w) for w in POOL[:3]]
        results = SyncFront().predict_batch(requests)
        assert [r.memory_mb for r in results] == [10.0, 20.0, 30.0]
        assert [r.request_id for r in results] == [r.request_id for r in requests]

    def test_predict_stream_keeps_a_bounded_window_in_flight(self):
        """The stream submits ahead of the consumer, but only window-deep."""
        front = SyncFront(ServerConfig(stream_window=3))
        stream = front.predict_stream(iter(POOL))
        assert front.submitted == []  # lazy until first pull
        assert next(stream) == 10.0
        # The window filled and yielded its oldest: never the whole input.
        assert len(front.submitted) == 3
        assert list(stream) == [20.0, 30.0, 40.0, 50.0, 60.0]
        assert len(front.submitted) == len(POOL)

    def test_snapshot_folds_feature_cache_counters(self):
        front = SyncFront()
        stats = FeatureCacheStats(hits=6, misses=2, evictions=1, size=4, max_entries=8)
        front.feature_cache_stats = lambda: stats
        report = front.snapshot()
        assert report.feature_cache_hits == 6
        assert report.feature_cache_misses == 2
        assert report.feature_cache_evictions == 1
        assert report.feature_cache_hit_rate == stats.hit_rate

    def test_snapshot_without_feature_cache_leaves_defaults(self):
        report = SyncFront().snapshot()
        assert report.feature_cache_hits == 0
        assert report.feature_cache_misses == 0

    def test_context_manager_closes_the_front(self):
        front = SyncFront()
        with front as entered:
            assert entered is front
            assert not front.closed
        assert front.closed


# -- the kernel-driver base ------------------------------------------------------------


class ConstantModel:
    def __init__(self, value: float) -> None:
        self.value = value

    def predict(self, workloads):
        return [self.value] * len(workloads)

    def predict_workload(self, workload):
        return self.value


class TestKernelDriverBase:
    def test_bare_predictor_is_wrapped_in_a_fresh_registry(self):
        driver = KernelDriverBase(ConstantModel(1.0))
        assert driver.model_name == DEFAULT_MODEL_NAME
        assert isinstance(driver.registry, ModelRegistry)
        assert driver.registry.active(DEFAULT_MODEL_NAME).value == 1.0

    def test_registry_source_is_used_as_is(self):
        registry = ModelRegistry()
        registry.register("wmp", ConstantModel(2.0))
        driver = KernelDriverBase(registry, model_name="wmp")
        assert driver.registry is registry

    def test_unknown_model_name_fails_fast_at_construction(self):
        registry = ModelRegistry()
        registry.register("wmp", ConstantModel(2.0))
        with pytest.raises(UnknownModelError):
            KernelDriverBase(registry, model_name="nope")

    def test_external_telemetry_instance_is_adopted(self):
        telemetry = ServingTelemetry()
        assert KernelDriverBase(ConstantModel(1.0), telemetry=telemetry).telemetry is telemetry
        assert isinstance(KernelDriverBase(ConstantModel(1.0)).telemetry, ServingTelemetry)

    def test_predict_batch_resolves_the_active_model_per_batch(self):
        """A promotion takes effect on the next batch, no restart needed."""
        registry = ModelRegistry()
        registry.register("default", ConstantModel(1.0))
        driver = KernelDriverBase(registry)
        assert driver._predict_batch(POOL[:2]) == [1.0, 1.0]
        registry.register("default", ConstantModel(9.0), promote=True)
        assert driver._predict_batch(POOL[:2]) == [9.0, 9.0]

    def test_stats_follow_the_config(self):
        on = KernelDriverBase(ConstantModel(1.0))
        assert on.cache_stats() is not None
        assert on.batcher_stats() is not None
        assert on.coalesced_requests == 0
        off = KernelDriverBase(
            ConstantModel(1.0),
            config=ServerConfig(enable_cache=False, enable_batching=False),
        )
        assert off.cache_stats() is None
        assert off.batcher_stats() is None

    def test_feature_cache_surfaces_follow_the_model(self):
        plain = KernelDriverBase(ConstantModel(1.0))
        assert plain.feature_cache_stats() is None
        assert plain._feature_cache_flag() is False
