"""Tests for plan featurization."""

import numpy as np
import pytest

from repro.core.featurizer import OPERATOR_VOCABULARY, PlanFeaturizer
from repro.dbms.plan.operators import OperatorType, PlanNode


def _plan() -> PlanNode:
    scan_a = PlanNode(OperatorType.TBSCAN, est_cardinality=1000.0, table="a")
    scan_b = PlanNode(OperatorType.TBSCAN, est_cardinality=500.0, table="b")
    join = PlanNode(OperatorType.HSJOIN, est_cardinality=800.0, children=[scan_a, scan_b])
    sort = PlanNode(OperatorType.SORT, est_cardinality=800.0, children=[join])
    return PlanNode(OperatorType.RETURN, est_cardinality=800.0, children=[sort])


class TestPlanFeaturizer:
    def test_vector_length_is_two_per_operator(self):
        featurizer = PlanFeaturizer()
        assert featurizer.n_features == 2 * len(OPERATOR_VOCABULARY)
        assert featurizer.featurize_plan(_plan()).shape == (featurizer.n_features,)

    def test_counts_per_operator_type(self):
        featurizer = PlanFeaturizer(log_cardinality=False)
        features = featurizer.featurize_plan(_plan())
        names = featurizer.feature_names()
        by_name = dict(zip(names, features))
        assert by_name["tbscan_count"] == 2.0
        assert by_name["hsjoin_count"] == 1.0
        assert by_name["sort_count"] == 1.0
        assert by_name["ixscan_count"] == 0.0

    def test_cardinalities_aggregate_across_instances(self):
        featurizer = PlanFeaturizer(log_cardinality=False)
        by_name = dict(zip(featurizer.feature_names(), featurizer.featurize_plan(_plan())))
        assert by_name["tbscan_cardinality"] == pytest.approx(1500.0)
        assert by_name["sort_cardinality"] == pytest.approx(800.0)

    def test_log_scaling_applied(self):
        raw = PlanFeaturizer(log_cardinality=False).featurize_plan(_plan())
        logged = PlanFeaturizer(log_cardinality=True).featurize_plan(_plan())
        # Counts (even positions) are identical, cardinalities are compressed.
        assert np.allclose(raw[0::2], logged[0::2])
        assert np.all(logged[1::2] <= raw[1::2])

    def test_feature_names_align_with_vector(self):
        featurizer = PlanFeaturizer()
        assert len(featurizer.feature_names()) == featurizer.n_features
        assert featurizer.feature_names()[0] == "tbscan_count"

    def test_featurize_records_matrix(self, tpcds_small):
        featurizer = PlanFeaturizer()
        records = tpcds_small.train_records[:30]
        matrix = featurizer.featurize_records(records)
        assert matrix.shape == (30, featurizer.n_features)
        assert np.all(np.isfinite(matrix))
        assert np.all(matrix >= 0.0)

    def test_empty_record_list_gives_empty_matrix(self):
        featurizer = PlanFeaturizer()
        assert featurizer.featurize_records([]).shape == (0, featurizer.n_features)

    def test_different_plans_have_different_features(self, tpcds_small):
        featurizer = PlanFeaturizer()
        matrix = featurizer.featurize_records(tpcds_small.train_records[:100])
        assert np.unique(matrix, axis=0).shape[0] > 10
