"""Differential testing: PipelineKernel vs the naive-loop oracle, and the
same random traces replayed through the three real serving fronts.

Two layers of evidence that the serving pipeline does what its spec says:

* :class:`KernelVsOracleMachine` — a hypothesis ``RuleBasedStateMachine``
  that feeds one random event sequence (interleaved submits across cache
  policies and deadline mixes, clock advances, batch completions/failures
  in arbitrary order, hot swaps, value-count mismatches) to both the kernel
  and :class:`tests.oracle.NaiveServingOracle`, asserting **bit-identical
  action lists** after every event and identical counters (batcher, cache,
  queue depths, wake-ups) as a cross-checked invariant.  The two
  implementations share only the event/action dataclasses.
* ``test_trace_replay_*`` — random request traces replayed through the
  thread, asyncio and sharded fronts (real clocks, real locks), asserting
  every delivered value matches the naive one-call-at-a-time loop and the
  deadline/telemetry accounting invariants hold.

Example budgets come from the settings profiles in ``conftest.py``
(``HYPOTHESIS_PROFILE=ci`` runs the acceptance budget of 500 examples).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from oracle import (
    LookupPredictor,
    NaiveServingOracle,
    make_lookup_pool,
    normalize_actions,
)

from repro.api import CachePolicy, PredictionRequest
from repro.exceptions import DeadlineExceededError
from repro.registry import ShardedModelRegistry
from repro.serving import (
    AsyncPredictionServer,
    PredictionServer,
    ServerConfig,
    ShardedPredictionServer,
)
from repro.serving.kernel import Complete, Fail, FlushBatch, PipelineKernel, Shed

POOL = make_lookup_pool(5)

#: Tenant labels mixed into submits (None = unlabeled traffic).
TENANTS = [None, "a", "b", "c"]

configs = st.builds(
    ServerConfig,
    max_batch_size=st.integers(min_value=1, max_value=4),
    max_wait_s=st.sampled_from([0.0, 0.005, 0.05]),
    cache_entries=st.integers(min_value=1, max_value=3),
    cache_ttl_s=st.sampled_from([None, 0.02, 10.0]),
    enable_cache=st.booleans(),
    enable_batching=st.booleans(),
    max_queue_depth=st.sampled_from([None, 1, 2, 4]),
    tenant_weights=st.sampled_from([None, {"a": 2, "b": 1}, {"a": 3, "b": 2, "c": 1}]),
    tenant_max_inflight=st.sampled_from([None, {"a": 1}, {"a": 2, "b": 1}]),
)

# Deadline shapes relative to the machine's virtual "now": absent, far out,
# inside a typical batch window (exercises wait clamping + EDF), exactly now
# (the admission boundary), and already past.
DEADLINE_KINDS = ["none", "far", "tight", "now", "past"]


class KernelVsOracleMachine(RuleBasedStateMachine):
    """Drive kernel and oracle with one event stream; they must never differ."""

    @initialize(
        config=configs,
        max_concurrent=st.integers(min_value=1, max_value=2),
    )
    def setup(self, config, max_concurrent):
        self.kernel = PipelineKernel(config, max_concurrent_batches=max_concurrent)
        self.oracle = NaiveServingOracle(config, max_concurrent_batches=max_concurrent)
        self.now = 100.0
        self.rid = 0
        self.model_version = 0
        self.outstanding: list[FlushBatch] = []

    def _step(self, kernel_actions, oracle_actions):
        assert normalize_actions(kernel_actions) == normalize_actions(oracle_actions)
        for action in kernel_actions:
            if isinstance(action, FlushBatch):
                self.outstanding.append(action)

    def _deadline(self, kind):
        return {
            "none": None,
            "far": self.now + 1.0,
            "tight": self.now + 0.004,
            "now": self.now,
            "past": self.now - 0.01,
        }[kind]

    def _submit_one(self, pool_idx, kind, use_cache, tenant, priority):
        self.rid += 1
        workload = POOL[pool_idx]
        deadline_at = self._deadline(kind)
        self._step(
            self.kernel.submit(
                self.rid,
                workload,
                now=self.now,
                deadline_at=deadline_at,
                use_cache=use_cache,
                tenant=tenant,
                priority=priority,
            ),
            self.oracle.submit(
                self.rid,
                workload,
                now=self.now,
                deadline_at=deadline_at,
                use_cache=use_cache,
                tenant=tenant,
                priority=priority,
            ),
        )

    @rule(
        pool_idx=st.integers(min_value=0, max_value=len(POOL) - 1),
        kind=st.sampled_from(DEADLINE_KINDS),
        use_cache=st.booleans(),
        dt=st.sampled_from([0.0, 0.001, 0.01, 0.1]),
        tenant=st.sampled_from(TENANTS),
        priority=st.integers(min_value=0, max_value=2),
    )
    def submit(self, pool_idx, kind, use_cache, dt, tenant, priority):
        self.now += dt
        self._submit_one(pool_idx, kind, use_cache, tenant, priority)

    @rule(
        burst=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(POOL) - 1),
                st.sampled_from(["none", "far", "tight"]),
                st.sampled_from(TENANTS),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=2,
            max_size=6,
        )
    )
    def submit_burst(self, burst):
        # A same-instant burst across tenants and priorities: the fastest
        # way to overflow max_queue_depth and trip tenant quotas, since no
        # time passes for the batch window (or a deadline) to drain work.
        for pool_idx, kind, tenant, priority in burst:
            self._submit_one(pool_idx, kind, True, tenant, priority)

    @rule(dt=st.sampled_from([0.0, 0.001, 0.01, 0.1, 2.0]))
    def tick(self, dt):
        self.now += dt
        self._step(self.kernel.tick(self.now), self.oracle.tick(self.now))

    @rule()
    def hot_swap(self):
        self.model_version += 1
        self._step(
            self.kernel.sync_version(self.model_version, self.now),
            self.oracle.sync_version(self.model_version, self.now),
        )

    @rule()
    def resync_same_version(self):
        self._step(
            self.kernel.sync_version(self.model_version, self.now),
            self.oracle.sync_version(self.model_version, self.now),
        )

    def _pop_batch(self, which):
        return self.outstanding.pop(which % len(self.outstanding))

    def _model_values(self, batch, started_at):
        """What the model answers for the live partition at execution start
        (the model's answer depends on the promoted version)."""
        return [
            float(entry.workload.actual_memory_mb) + 1000.0 * self.model_version
            for entry in batch.entries
            if entry.deadline_at is None or entry.deadline_at > started_at
        ]

    @precondition(lambda self: self.outstanding)
    @rule(
        which=st.integers(min_value=0, max_value=7),
        start_delay=st.sampled_from([0.0, 0.002, 0.05]),
        duration=st.sampled_from([0.0, 0.001, 0.02]),
    )
    def complete_batch(self, which, start_delay, duration):
        batch = self._pop_batch(which)
        started_at = self.now + start_delay
        self.now = started_at + duration
        values = self._model_values(batch, started_at)
        self._step(
            self.kernel.batch_done(batch.batch_id, started_at, values, self.now),
            self.oracle.batch_done(batch.batch_id, started_at, values, self.now),
        )

    @precondition(lambda self: self.outstanding)
    @rule(which=st.integers(min_value=0, max_value=7))
    def complete_batch_with_wrong_value_count(self, which):
        batch = self._pop_batch(which)
        started_at = self.now
        values = self._model_values(batch, started_at) + [0.0]
        self._step(
            self.kernel.batch_done(batch.batch_id, started_at, values, self.now),
            self.oracle.batch_done(batch.batch_id, started_at, values, self.now),
        )

    @precondition(lambda self: self.outstanding)
    @rule(
        which=st.integers(min_value=0, max_value=7),
        deadline_error=st.booleans(),
    )
    def fail_batch(self, which, deadline_error):
        batch = self._pop_batch(which)
        error = (
            DeadlineExceededError("budget burned inside the model")
            if deadline_error
            else RuntimeError("model exploded")
        )
        self._step(
            self.kernel.batch_failed(batch.batch_id, self.now, error, self.now),
            self.oracle.batch_failed(batch.batch_id, self.now, error, self.now),
        )

    @invariant()
    def same_observable_state(self):
        if not hasattr(self, "kernel"):
            return
        assert self.kernel.pending_count() == self.oracle.pending_count()
        assert self.kernel.executing_count() == self.oracle.executing_count()
        assert self.kernel.coalesced_requests == self.oracle.coalesced
        assert self.kernel.generation == self.oracle.generation
        assert self.kernel.version == self.oracle.version
        assert self.kernel.idle() == self.oracle.idle()
        assert self.kernel.batcher_stats() == self.oracle.batcher_stats()
        assert self.kernel.cache_stats() == self.oracle.cache_stats()
        # The kernel's incremental per-tenant accounting must equal the
        # oracle's naive recount of its containers.
        assert self.kernel.tenant_inflight() == self.oracle.tenant_inflight()
        kernel_wakeup = self.kernel.next_wakeup()
        oracle_wakeup = self.oracle.next_wakeup()
        if kernel_wakeup is None or oracle_wakeup is None:
            assert kernel_wakeup == oracle_wakeup
        else:
            assert kernel_wakeup == pytest.approx(oracle_wakeup)

    def teardown(self):
        if not hasattr(self, "kernel"):
            return
        # Drain: close both machines, then finish every outstanding batch
        # (completions can flush further batches, so loop until dry).
        self._step(self.kernel.close(self.now), self.oracle.close(self.now))
        while self.outstanding:
            batch = self.outstanding.pop(0)
            started_at = self.now
            values = self._model_values(batch, started_at)
            self._step(
                self.kernel.batch_done(batch.batch_id, started_at, values, self.now),
                self.oracle.batch_done(batch.batch_id, started_at, values, self.now),
            )
        assert self.kernel.idle() and self.oracle.idle()
        assert self.kernel.batcher_stats() == self.oracle.batcher_stats()


KernelVsOracleMachine.TestCase.settings = settings(stateful_step_count=40)
TestKernelVsOracle = KernelVsOracleMachine.TestCase


# -- fairness invariants, as direct properties of the kernel ---------------------------


def _busy_kernel(config):
    """A kernel whose single model slot is occupied, so submits only queue.

    Returns the kernel and the occupying FlushBatch (rid 0, no deadline);
    feeding its BatchDone back is what releases the slot.
    """
    kernel = PipelineKernel(config)
    actions = kernel.submit(0, POOL[0], now=0.0)
    actions += kernel.tick(config.max_wait_s)  # window expiry -> flush rid 0
    flushes = [a for a in actions if isinstance(a, FlushBatch)]
    assert len(flushes) == 1 and len(flushes[0].entries) == 1
    return kernel, flushes[0]


class TestSchedulingFairnessProperties:
    """The scheduler's fairness guarantees, asserted directly on the kernel
    (the differential machine checks kernel == oracle; these check that what
    they both do is actually *fair*)."""

    @given(
        priorities=st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=12),
        depth=st.integers(min_value=1, max_value=4),
    )
    def test_overload_never_sheds_high_priority_while_lower_survives(self, priorities, depth):
        config = ServerConfig(
            enable_cache=False, max_batch_size=8, max_wait_s=10.0, max_queue_depth=depth
        )
        kernel, _first = _busy_kernel(config)
        queued = {}  # rid -> priority, mirroring the kernel's pending queue
        for i, priority in enumerate(priorities):
            rid = i + 1
            actions = kernel.submit(rid, POOL[i % len(POOL)], now=10.0, priority=priority)
            sheds = [a for a in actions if isinstance(a, Shed)]
            newcomer_shed = any(a.rid == rid for a in sheds)
            for action in sheds:
                assert action.reason in ("queue_full", "priority_evict")
                shed_priority = priority if action.rid == rid else queued.pop(action.rid)
                survivors = list(queued.values())
                if action.rid != rid:
                    survivors.append(priority)  # the admitted newcomer
                # The fairness contract: an overload shed only ever takes
                # the (joint-)lowest priority present.
                assert all(shed_priority <= p for p in survivors)
            if not newcomer_shed:
                queued[rid] = priority
            assert len(queued) <= depth

    @given(
        weight_a=st.integers(min_value=1, max_value=4),
        weight_b=st.integers(min_value=1, max_value=4),
        max_batch=st.integers(min_value=2, max_value=8),
        n_batches=st.integers(min_value=2, max_value=6),
    )
    def test_weighted_share_honored_within_one_batch(
        self, weight_a, weight_b, max_batch, n_batches
    ):
        config = ServerConfig(
            enable_cache=False,
            max_batch_size=max_batch,
            max_wait_s=10.0,
            tenant_weights={"a": weight_a, "b": weight_b},
        )
        kernel, first = _busy_kernel(config)
        total = n_batches * max_batch
        tenant_of = {}
        rid = 0
        for i in range(total):  # deep backlog for both tenants
            for tenant in ("a", "b"):
                rid += 1
                tenant_of[rid] = tenant
                kernel.submit(rid, POOL[i % len(POOL)], now=10.0, tenant=tenant)
        # Release the occupying singleton well past every batch window, then
        # count who wins the slots of the next ``total`` flushed entries.
        now = 30.0
        actions = kernel.batch_done(first.batch_id, 10.0, [10.0], now)
        flushes = [a for a in actions if isinstance(a, FlushBatch)]
        slots = {"a": 0, "b": 0}
        measured = 0
        while flushes and measured < total:
            flush = flushes.pop(0)
            for entry in flush.entries:
                if measured < total:
                    slots[tenant_of[entry.rid]] += 1
                    measured += 1
            done = kernel.batch_done(flush.batch_id, now, [1.0] * len(flush.entries), now)
            flushes.extend(a for a in done if isinstance(a, FlushBatch))
        assert measured == total
        expected_a = total * weight_a / (weight_a + weight_b)
        assert abs(slots["a"] - expected_a) <= max_batch

    @given(
        config=configs,
        trace=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(POOL) - 1),
                st.sampled_from(DEADLINE_KINDS),
                st.sampled_from(TENANTS),
                st.integers(min_value=0, max_value=2),
                st.sampled_from([0.0, 0.001, 0.1]),
                st.booleans(),  # also complete the oldest outstanding batch?
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_starvation_freedom_every_request_terminates(self, config, trace):
        kernel = PipelineKernel(config)
        now = 100.0
        deadline = {
            "none": lambda: None,
            "far": lambda: now + 1.0,
            "tight": lambda: now + 0.004,
            "now": lambda: now,
            "past": lambda: now - 0.01,
        }
        outstanding = []
        terminal = []

        def collect(actions):
            for action in actions:
                if isinstance(action, (Complete, Shed, Fail)):
                    terminal.append(action.rid)
                elif isinstance(action, FlushBatch):
                    outstanding.append(action)

        def finish_oldest():
            batch = outstanding.pop(0)
            live = [
                e for e in batch.entries if e.deadline_at is None or e.deadline_at > now
            ]
            collect(kernel.batch_done(batch.batch_id, now, [1.0] * len(live), now))

        submitted = []
        for rid, (pool_idx, kind, tenant, priority, dt, drain) in enumerate(trace, start=1):
            now += dt
            if drain and outstanding:
                finish_oldest()
            submitted.append(rid)
            collect(
                kernel.submit(
                    rid,
                    POOL[pool_idx],
                    now=now,
                    deadline_at=deadline[kind](),
                    tenant=tenant,
                    priority=priority,
                )
            )
        collect(kernel.close(now))
        while outstanding:
            finish_oldest()
        assert kernel.idle()
        # Starvation-freedom: every submitted request reached exactly one
        # terminal action (completed, shed, or failed) — none got stuck.
        assert sorted(terminal) == submitted


# -- the same randomized traffic, through the real fronts ------------------------------


def _make_front(kind, model, config):
    if kind == "thread":
        return PredictionServer(model, config=config)
    if kind == "asyncio":
        return AsyncPredictionServer(model, config=config)
    registry = ShardedModelRegistry(n_shards=2)
    registry.register_replicated("default", model)
    return ShardedPredictionServer(registry, backend="thread", config=config)


trace_entries = st.tuples(
    st.integers(min_value=0, max_value=len(POOL) - 1),
    st.sampled_from(["none", "generous", "expired"]),
    st.booleans(),  # BYPASS the cache?
)


class TestTraceReplayOnRealFronts:
    """Random traces through thread/asyncio/sharded: oracle answers, sane
    deadline accounting.  Capped below the profile budget: every example
    spins up three real servers."""

    @settings(max_examples=8)
    @given(
        trace=st.lists(trace_entries, min_size=1, max_size=20),
        max_batch=st.integers(min_value=1, max_value=6),
    )
    def test_trace_replay_matches_naive_loop_oracle(self, trace, max_batch):
        deadlines = {"none": None, "generous": 30.0, "expired": 1e-9}
        expected = LookupPredictor()
        config = ServerConfig(max_batch_size=max_batch, max_wait_s=0.001)
        n_expired = sum(1 for _, kind, _ in trace if kind == "expired")
        for front in ("thread", "asyncio", "sharded"):
            with _make_front(front, LookupPredictor(), config) as server:
                futures = [
                    (
                        idx,
                        kind,
                        bypass,
                        server.submit_request(
                            PredictionRequest.of(
                                POOL[idx],
                                deadline_s=deadlines[kind],
                                cache_policy=(
                                    CachePolicy.BYPASS if bypass else CachePolicy.DEFAULT
                                ),
                            )
                        ),
                    )
                    for idx, kind, bypass in trace
                ]
                raised = 0
                for idx, kind, bypass, future in futures:
                    try:
                        result = future.result(timeout=10.0)
                    except DeadlineExceededError:
                        raised += 1
                        # Only a genuinely expirable budget may be shed...
                        assert kind == "expired", front
                    else:
                        # ... and every delivered answer is the naive-loop
                        # oracle's, whatever path served it.
                        assert result.memory_mb == expected.predict_workload(POOL[idx]), front
                        if kind == "expired":
                            # Delivered late: only possible via the cache /
                            # coalescing tiers, never for a BYPASS request.
                            assert not bypass, front
                report = server.snapshot()
            assert report.n_errors == 0, front
            # Sheds can never exceed the expirable population, and every
            # shed is also a deadline miss (raised errors are sheds, and
            # late deliveries only add further misses).
            assert report.shed_requests <= n_expired, front
            assert report.shed_requests == raised, front
            assert report.deadline_misses >= report.shed_requests, front
