"""Differential testing: PipelineKernel vs the naive-loop oracle, and the
same random traces replayed through the three real serving fronts.

Two layers of evidence that the serving pipeline does what its spec says:

* :class:`KernelVsOracleMachine` — a hypothesis ``RuleBasedStateMachine``
  that feeds one random event sequence (interleaved submits across cache
  policies and deadline mixes, clock advances, batch completions/failures
  in arbitrary order, hot swaps, value-count mismatches) to both the kernel
  and :class:`tests.oracle.NaiveServingOracle`, asserting **bit-identical
  action lists** after every event and identical counters (batcher, cache,
  queue depths, wake-ups) as a cross-checked invariant.  The two
  implementations share only the event/action dataclasses.
* ``test_trace_replay_*`` — random request traces replayed through the
  thread, asyncio and sharded fronts (real clocks, real locks), asserting
  every delivered value matches the naive one-call-at-a-time loop and the
  deadline/telemetry accounting invariants hold.

Example budgets come from the settings profiles in ``conftest.py``
(``HYPOTHESIS_PROFILE=ci`` runs the acceptance budget of 500 examples).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from oracle import (
    LookupPredictor,
    NaiveServingOracle,
    make_lookup_pool,
    normalize_actions,
)

from repro.api import CachePolicy, PredictionRequest
from repro.exceptions import DeadlineExceededError
from repro.registry import ShardedModelRegistry
from repro.serving import (
    AsyncPredictionServer,
    PredictionServer,
    ServerConfig,
    ShardedPredictionServer,
)
from repro.serving.kernel import FlushBatch, PipelineKernel

POOL = make_lookup_pool(5)

configs = st.builds(
    ServerConfig,
    max_batch_size=st.integers(min_value=1, max_value=4),
    max_wait_s=st.sampled_from([0.0, 0.005, 0.05]),
    cache_entries=st.integers(min_value=1, max_value=3),
    cache_ttl_s=st.sampled_from([None, 0.02, 10.0]),
    enable_cache=st.booleans(),
    enable_batching=st.booleans(),
)

# Deadline shapes relative to the machine's virtual "now": absent, far out,
# inside a typical batch window (exercises wait clamping + EDF), exactly now
# (the admission boundary), and already past.
DEADLINE_KINDS = ["none", "far", "tight", "now", "past"]


class KernelVsOracleMachine(RuleBasedStateMachine):
    """Drive kernel and oracle with one event stream; they must never differ."""

    @initialize(
        config=configs,
        max_concurrent=st.integers(min_value=1, max_value=2),
    )
    def setup(self, config, max_concurrent):
        self.kernel = PipelineKernel(config, max_concurrent_batches=max_concurrent)
        self.oracle = NaiveServingOracle(config, max_concurrent_batches=max_concurrent)
        self.now = 100.0
        self.rid = 0
        self.model_version = 0
        self.outstanding: list[FlushBatch] = []

    def _step(self, kernel_actions, oracle_actions):
        assert normalize_actions(kernel_actions) == normalize_actions(oracle_actions)
        for action in kernel_actions:
            if isinstance(action, FlushBatch):
                self.outstanding.append(action)

    def _deadline(self, kind):
        return {
            "none": None,
            "far": self.now + 1.0,
            "tight": self.now + 0.004,
            "now": self.now,
            "past": self.now - 0.01,
        }[kind]

    @rule(
        pool_idx=st.integers(min_value=0, max_value=len(POOL) - 1),
        kind=st.sampled_from(DEADLINE_KINDS),
        use_cache=st.booleans(),
        dt=st.sampled_from([0.0, 0.001, 0.01, 0.1]),
    )
    def submit(self, pool_idx, kind, use_cache, dt):
        self.now += dt
        self.rid += 1
        workload = POOL[pool_idx]
        deadline_at = self._deadline(kind)
        self._step(
            self.kernel.submit(
                self.rid, workload, now=self.now, deadline_at=deadline_at, use_cache=use_cache
            ),
            self.oracle.submit(
                self.rid, workload, now=self.now, deadline_at=deadline_at, use_cache=use_cache
            ),
        )

    @rule(dt=st.sampled_from([0.0, 0.001, 0.01, 0.1, 2.0]))
    def tick(self, dt):
        self.now += dt
        self._step(self.kernel.tick(self.now), self.oracle.tick(self.now))

    @rule()
    def hot_swap(self):
        self.model_version += 1
        self._step(
            self.kernel.sync_version(self.model_version, self.now),
            self.oracle.sync_version(self.model_version, self.now),
        )

    @rule()
    def resync_same_version(self):
        self._step(
            self.kernel.sync_version(self.model_version, self.now),
            self.oracle.sync_version(self.model_version, self.now),
        )

    def _pop_batch(self, which):
        return self.outstanding.pop(which % len(self.outstanding))

    def _model_values(self, batch, started_at):
        """What the model answers for the live partition at execution start
        (the model's answer depends on the promoted version)."""
        return [
            float(entry.workload.actual_memory_mb) + 1000.0 * self.model_version
            for entry in batch.entries
            if entry.deadline_at is None or entry.deadline_at > started_at
        ]

    @precondition(lambda self: self.outstanding)
    @rule(
        which=st.integers(min_value=0, max_value=7),
        start_delay=st.sampled_from([0.0, 0.002, 0.05]),
        duration=st.sampled_from([0.0, 0.001, 0.02]),
    )
    def complete_batch(self, which, start_delay, duration):
        batch = self._pop_batch(which)
        started_at = self.now + start_delay
        self.now = started_at + duration
        values = self._model_values(batch, started_at)
        self._step(
            self.kernel.batch_done(batch.batch_id, started_at, values, self.now),
            self.oracle.batch_done(batch.batch_id, started_at, values, self.now),
        )

    @precondition(lambda self: self.outstanding)
    @rule(which=st.integers(min_value=0, max_value=7))
    def complete_batch_with_wrong_value_count(self, which):
        batch = self._pop_batch(which)
        started_at = self.now
        values = self._model_values(batch, started_at) + [0.0]
        self._step(
            self.kernel.batch_done(batch.batch_id, started_at, values, self.now),
            self.oracle.batch_done(batch.batch_id, started_at, values, self.now),
        )

    @precondition(lambda self: self.outstanding)
    @rule(
        which=st.integers(min_value=0, max_value=7),
        deadline_error=st.booleans(),
    )
    def fail_batch(self, which, deadline_error):
        batch = self._pop_batch(which)
        error = (
            DeadlineExceededError("budget burned inside the model")
            if deadline_error
            else RuntimeError("model exploded")
        )
        self._step(
            self.kernel.batch_failed(batch.batch_id, self.now, error, self.now),
            self.oracle.batch_failed(batch.batch_id, self.now, error, self.now),
        )

    @invariant()
    def same_observable_state(self):
        if not hasattr(self, "kernel"):
            return
        assert self.kernel.pending_count() == self.oracle.pending_count()
        assert self.kernel.executing_count() == self.oracle.executing_count()
        assert self.kernel.coalesced_requests == self.oracle.coalesced
        assert self.kernel.generation == self.oracle.generation
        assert self.kernel.version == self.oracle.version
        assert self.kernel.idle() == self.oracle.idle()
        assert self.kernel.batcher_stats() == self.oracle.batcher_stats()
        assert self.kernel.cache_stats() == self.oracle.cache_stats()
        kernel_wakeup = self.kernel.next_wakeup()
        oracle_wakeup = self.oracle.next_wakeup()
        if kernel_wakeup is None or oracle_wakeup is None:
            assert kernel_wakeup == oracle_wakeup
        else:
            assert kernel_wakeup == pytest.approx(oracle_wakeup)

    def teardown(self):
        if not hasattr(self, "kernel"):
            return
        # Drain: close both machines, then finish every outstanding batch
        # (completions can flush further batches, so loop until dry).
        self._step(self.kernel.close(self.now), self.oracle.close(self.now))
        while self.outstanding:
            batch = self.outstanding.pop(0)
            started_at = self.now
            values = self._model_values(batch, started_at)
            self._step(
                self.kernel.batch_done(batch.batch_id, started_at, values, self.now),
                self.oracle.batch_done(batch.batch_id, started_at, values, self.now),
            )
        assert self.kernel.idle() and self.oracle.idle()
        assert self.kernel.batcher_stats() == self.oracle.batcher_stats()


KernelVsOracleMachine.TestCase.settings = settings(stateful_step_count=40)
TestKernelVsOracle = KernelVsOracleMachine.TestCase


# -- the same randomized traffic, through the real fronts ------------------------------


def _make_front(kind, model, config):
    if kind == "thread":
        return PredictionServer(model, config=config)
    if kind == "asyncio":
        return AsyncPredictionServer(model, config=config)
    registry = ShardedModelRegistry(n_shards=2)
    registry.register_replicated("default", model)
    return ShardedPredictionServer(registry, backend="thread", config=config)


trace_entries = st.tuples(
    st.integers(min_value=0, max_value=len(POOL) - 1),
    st.sampled_from(["none", "generous", "expired"]),
    st.booleans(),  # BYPASS the cache?
)


class TestTraceReplayOnRealFronts:
    """Random traces through thread/asyncio/sharded: oracle answers, sane
    deadline accounting.  Capped below the profile budget: every example
    spins up three real servers."""

    @settings(max_examples=8)
    @given(
        trace=st.lists(trace_entries, min_size=1, max_size=20),
        max_batch=st.integers(min_value=1, max_value=6),
    )
    def test_trace_replay_matches_naive_loop_oracle(self, trace, max_batch):
        deadlines = {"none": None, "generous": 30.0, "expired": 1e-9}
        expected = LookupPredictor()
        config = ServerConfig(max_batch_size=max_batch, max_wait_s=0.001)
        n_expired = sum(1 for _, kind, _ in trace if kind == "expired")
        for front in ("thread", "asyncio", "sharded"):
            with _make_front(front, LookupPredictor(), config) as server:
                futures = [
                    (
                        idx,
                        kind,
                        bypass,
                        server.submit_request(
                            PredictionRequest.of(
                                POOL[idx],
                                deadline_s=deadlines[kind],
                                cache_policy=(
                                    CachePolicy.BYPASS if bypass else CachePolicy.DEFAULT
                                ),
                            )
                        ),
                    )
                    for idx, kind, bypass in trace
                ]
                raised = 0
                for idx, kind, bypass, future in futures:
                    try:
                        result = future.result(timeout=10.0)
                    except DeadlineExceededError:
                        raised += 1
                        # Only a genuinely expirable budget may be shed...
                        assert kind == "expired", front
                    else:
                        # ... and every delivered answer is the naive-loop
                        # oracle's, whatever path served it.
                        assert result.memory_mb == expected.predict_workload(POOL[idx]), front
                        if kind == "expired":
                            # Delivered late: only possible via the cache /
                            # coalescing tiers, never for a BYPASS request.
                            assert not bypass, front
                report = server.snapshot()
            assert report.n_errors == 0, front
            # Sheds can never exceed the expirable population, and every
            # shed is also a deadline miss (raised errors are sheds, and
            # late deliveries only add further misses).
            assert report.shed_requests <= n_expired, front
            assert report.shed_requests == raised, front
            assert report.deadline_misses >= report.shed_requests, front
