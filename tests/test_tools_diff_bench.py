"""Tests for tools/diff_bench.py (serving-benchmark regression gate)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import diff_bench  # noqa: E402


BASELINE = {
    "latency_p95_ms": 10.0,
    "achieved_qps": 200.0,
    "cache_hit_rate": 0.8,
    "n_errors": 0,
    "benchmark": "tpcds",
}


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def run(tmp_path, current, *extra, baseline=BASELINE):
    current_path = write(tmp_path, "current.json", current)
    baseline_path = write(tmp_path, "baseline.json", baseline)
    return diff_bench.main([str(current_path), str(baseline_path), *extra])


class TestGates:
    def test_within_bounds_passes(self, tmp_path, capsys):
        current = dict(BASELINE, latency_p95_ms=11.0, achieved_qps=190.0)
        assert run(tmp_path, current) == 0
        assert "ok: gated metrics" in capsys.readouterr().out

    def test_p95_regression_fails(self, tmp_path, capsys):
        current = dict(BASELINE, latency_p95_ms=12.5)  # +25% > 20%
        assert run(tmp_path, current) == 1
        assert "latency_p95_ms" in capsys.readouterr().err

    def test_throughput_regression_fails(self, tmp_path, capsys):
        current = dict(BASELINE, achieved_qps=150.0)  # -25% > 20%
        assert run(tmp_path, current) == 1
        assert "achieved_qps" in capsys.readouterr().err

    def test_improvements_never_fail(self, tmp_path):
        current = dict(BASELINE, latency_p95_ms=1.0, achieved_qps=1000.0)
        assert run(tmp_path, current) == 0

    def test_threshold_is_configurable(self, tmp_path):
        current = dict(BASELINE, latency_p95_ms=11.5)  # +15%
        assert run(tmp_path, current, "--max-regression", "0.10") == 1
        assert run(tmp_path, current, "--max-regression", "0.20") == 0

    def test_boundary_regression_is_allowed(self, tmp_path):
        current = dict(BASELINE, latency_p95_ms=12.0)  # exactly +20%
        assert run(tmp_path, current) == 0

    def test_non_gated_metrics_never_fail(self, tmp_path):
        current = dict(BASELINE, cache_hit_rate=0.1)  # -87% but informational
        assert run(tmp_path, current) == 0

    def test_new_deadline_fields_are_tolerated_not_gated(self, tmp_path):
        # A current report carrying fields the baseline predates (e.g. the
        # --deadline-ms counters) must diff cleanly, and even wildly
        # different values of shared deadline fields stay informational.
        current = dict(BASELINE, deadline_misses=123, shed_requests=45)
        assert run(tmp_path, current) == 0
        both = dict(BASELINE, deadline_misses=0, shed_requests=0)
        baseline_path = write(tmp_path, "baseline_deadline.json", both)
        current_path = write(
            tmp_path, "current_deadline.json", dict(both, deadline_misses=500, shed_requests=500)
        )
        assert diff_bench.main([str(current_path), str(baseline_path)]) == 0

    def test_repo_baseline_carries_deadline_fields(self):
        baseline = json.loads(
            (Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_serving.baseline.json")
            .read_text()
        )
        assert "deadline_misses" in baseline
        assert "shed_requests" in baseline


class TestSections:
    def test_sections_print_info_only_and_never_gate(self, tmp_path, capsys):
        # A regressed metric inside a section must not fail the run.
        current = dict(BASELINE, gateway={"latency_p95_ms": 500.0})
        baseline = dict(BASELINE, gateway={"latency_p95_ms": 1.0})
        assert run(tmp_path, current, baseline=baseline) == 0
        out = capsys.readouterr().out
        assert "[section gateway] (informational, not gated)" in out

    def test_current_only_section_prints_na_baselines(self, tmp_path, capsys):
        current = dict(BASELINE, scenario_new={"deadline_misses": 3})
        assert run(tmp_path, current) == 0
        out = capsys.readouterr().out
        assert "[section scenario_new]" in out
        assert "deadline_misses" in out
        assert "n/a" in out

    def test_per_tenant_blocks_flatten_into_section_rows(self, tmp_path, capsys):
        # Scenario legs nest one counter block per tenant; those rows are
        # printed as tenants.<name>.<field>, diffed against the baseline's
        # matching block when present, and never gate.
        tenants = {
            "noisy": {"shed_requests": 400, "shed_queue_full": 390, "shed_priority_evict": 10},
            "steady": {"deadline_misses": 0, "shed_requests": 0},
        }
        current = dict(BASELINE, scenario_contention={"n_requests": 9000, "tenants": tenants})
        baseline = dict(
            BASELINE,
            scenario_contention={
                "n_requests": 9500,
                "tenants": {"noisy": {"shed_requests": 350}},
            },
        )
        assert run(tmp_path, current, baseline=baseline) == 0
        out = capsys.readouterr().out
        assert "tenants.noisy.shed_requests" in out
        assert "tenants.noisy.shed_queue_full" in out
        assert "tenants.steady.deadline_misses" in out
        # The one field with a baseline gets a delta; the rest read n/a.
        noisy_row = next(l for l in out.splitlines() if "tenants.noisy.shed_requests" in l)
        assert "+14.3 %" in noisy_row

    def test_repo_baseline_carries_the_contention_section(self):
        baseline = json.loads(
            (Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_serving.baseline.json")
            .read_text()
        )
        section = baseline["scenario_contention"]
        for tenant in ("noisy", "steady"):
            block = section["tenants"][tenant]
            for field in ("shed_requests", "shed_queue_full", "shed_priority_evict"):
                assert field in block
        assert section["tenants"]["steady"]["deadline_misses"] == 0


class TestErrors:
    def test_missing_gated_metric_is_an_error(self, tmp_path):
        current = {"achieved_qps": 200.0}
        assert run(tmp_path, current) == 2

    def test_missing_file_exits_with_usage_code(self, tmp_path):
        baseline_path = write(tmp_path, "baseline.json", BASELINE)
        with pytest.raises(SystemExit) as excinfo:
            diff_bench.main([str(tmp_path / "nope.json"), str(baseline_path)])
        assert excinfo.value.code == 2  # file errors are distinct from regressions

    def test_invalid_json_exits_with_usage_code(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        baseline_path = write(tmp_path, "baseline.json", BASELINE)
        with pytest.raises(SystemExit) as excinfo:
            diff_bench.main([str(bad), str(baseline_path)])
        assert excinfo.value.code == 2


class TestUpdate:
    def test_update_overwrites_baseline(self, tmp_path):
        current = dict(BASELINE, latency_p95_ms=99.0)
        current_path = write(tmp_path, "current.json", current)
        baseline_path = write(tmp_path, "baseline.json", BASELINE)
        assert diff_bench.main([str(current_path), str(baseline_path), "--update"]) == 0
        assert json.loads(baseline_path.read_text())["latency_p95_ms"] == 99.0

    def test_repo_baseline_exists_and_has_gated_metrics(self):
        baseline = json.loads(
            (Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_serving.baseline.json")
            .read_text()
        )
        for metric in diff_bench.GATED_METRICS:
            assert metric in baseline
