"""Tests for train/test splitting, K-fold CV and randomized search."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.ml.linear import Ridge
from repro.ml.model_selection import (
    KFold,
    ParameterSampler,
    RandomizedSearchCV,
    cross_val_score,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self):
        data = list(range(100))
        train, test = train_test_split(data, test_size=0.2, random_state=0)
        assert len(train) == 80
        assert len(test) == 20

    def test_partition_is_disjoint_and_complete(self):
        data = list(range(50))
        train, test = train_test_split(data, test_size=0.3, random_state=1)
        assert sorted(train + test) == data

    def test_multiple_arrays_stay_aligned(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20) * 10
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=3)
        for row, target in zip(X_train, y_train):
            assert row[0] * 5 == target  # x[0] = 2i, y = 10i

    def test_no_shuffle_keeps_order(self):
        data = list(range(10))
        train, test = train_test_split(data, test_size=0.2, shuffle=False)
        assert test == [0, 1]
        assert train == list(range(2, 10))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            train_test_split([1, 2, 3], [1, 2], test_size=0.5)

    def test_invalid_test_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            train_test_split([1, 2, 3], test_size=1.5)

    def test_reproducible(self):
        data = list(range(30))
        a = train_test_split(data, random_state=5)
        b = train_test_split(data, random_state=5)
        assert a == b


class TestKFold:
    def test_folds_cover_all_indices_once(self):
        data = list(range(23))
        seen = []
        for _, test_idx in KFold(n_splits=5, random_state=0).split(data):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_train_test_disjoint(self):
        data = list(range(20))
        for train_idx, test_idx in KFold(n_splits=4, random_state=0).split(data):
            assert not set(train_idx) & set(test_idx)

    def test_invalid_splits(self):
        with pytest.raises(InvalidParameterError):
            list(KFold(n_splits=1).split([1, 2, 3]))
        with pytest.raises(InvalidParameterError):
            list(KFold(n_splits=10).split([1, 2, 3]))


class TestCrossValScore:
    def test_scores_near_one_for_linear_data(self, linear_problem):
        X, y, _ = linear_problem
        scores = cross_val_score(Ridge(alpha=0.1), X, y, cv=4, random_state=0)
        assert scores.shape == (4,)
        assert scores.mean() > 0.95

    def test_custom_scoring(self, linear_problem):
        X, y, _ = linear_problem

        def neg_mae(y_true, y_pred):
            return -float(np.mean(np.abs(y_true - y_pred)))

        scores = cross_val_score(Ridge(), X, y, cv=3, scoring=neg_mae, random_state=0)
        assert np.all(scores <= 0.0)


class TestParameterSampler:
    def test_samples_from_lists(self):
        sampler = ParameterSampler({"alpha": [0.1, 1.0, 10.0]}, n_iter=20, random_state=0)
        samples = list(sampler)
        assert len(samples) == 20
        assert {s["alpha"] for s in samples} <= {0.1, 1.0, 10.0}

    def test_supports_rvs_distributions(self):
        class Uniform01:
            def rvs(self, random_state=None):
                return np.random.default_rng(random_state).random()

        sampler = ParameterSampler({"alpha": Uniform01()}, n_iter=5, random_state=1)
        values = [s["alpha"] for s in sampler]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_invalid_n_iter(self):
        with pytest.raises(InvalidParameterError):
            ParameterSampler({"a": [1]}, n_iter=0)


class TestRandomizedSearchCV:
    def test_finds_reasonable_alpha(self, linear_problem):
        X, y, _ = linear_problem
        search = RandomizedSearchCV(
            Ridge(),
            {"alpha": [0.01, 0.1, 1.0, 1000.0, 100000.0]},
            n_iter=5,
            cv=3,
            random_state=0,
        )
        search.fit(X, y)
        assert search.best_params_["alpha"] < 1000.0
        assert search.best_score_ > 0.9
        assert len(search.cv_results_) == 5

    def test_predict_uses_refitted_best(self, linear_problem):
        X, y, _ = linear_problem
        search = RandomizedSearchCV(Ridge(), {"alpha": [0.1, 1.0]}, n_iter=2, cv=3, random_state=0)
        search.fit(X, y)
        assert search.predict(X).shape == y.shape

    def test_predict_before_fit_raises(self):
        search = RandomizedSearchCV(Ridge(), {"alpha": [1.0]}, n_iter=1)
        with pytest.raises(InvalidParameterError):
            search.predict([[1.0]])
