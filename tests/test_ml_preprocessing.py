"""Tests for feature scaling utilities."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.preprocessing import MinMaxScaler, StandardScaler, log1p_scale


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0], [1.0, 9.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_without_mean(self, rng):
        X = rng.normal(10.0, 1.0, size=(100, 2))
        scaled = StandardScaler(with_mean=False).fit_transform(X)
        assert scaled.mean() > 1.0  # mean not removed

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        out = scaler.transform(np.array([[4.0]]))
        assert out[0, 0] == pytest.approx(3.0)


class TestMinMaxScaler:
    def test_range_is_unit_interval(self, rng):
        X = rng.uniform(-5.0, 17.0, size=(100, 3))
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0 + 1e-12

    def test_constant_feature_maps_to_zero(self):
        X = np.array([[3.0], [3.0], [3.0]])
        assert np.allclose(MinMaxScaler().fit_transform(X), 0.0)

    def test_inverse_roundtrip(self, rng):
        X = rng.uniform(size=(30, 2))
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform([[0.5]])


class TestLog1pScale:
    def test_values(self):
        assert np.allclose(log1p_scale(np.array([0.0, np.e - 1.0])), [0.0, 1.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log1p_scale(np.array([-1.0]))

    def test_monotone(self, rng):
        values = np.sort(rng.uniform(0, 1e9, size=100))
        scaled = log1p_scale(values)
        assert np.all(np.diff(scaled) >= 0.0)
