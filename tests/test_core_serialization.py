"""Tests for model persistence and size accounting."""

import numpy as np
import pytest

from repro.core.model import LearnedWMP
from repro.core.serialization import load_model, save_model, serialized_size_kb
from repro.exceptions import SerializationError
from repro.ml.linear import Ridge


class TestSerializedSize:
    def test_size_positive_and_grows_with_model(self, linear_problem):
        X, y, _ = linear_problem
        small = Ridge().fit(X[:, :2], y)
        large = Ridge().fit(np.hstack([X] * 50), y)
        assert serialized_size_kb(small) > 0.0
        assert serialized_size_kb(large) > serialized_size_kb(small)

    def test_unpicklable_model_raises(self):
        with pytest.raises(SerializationError):
            serialized_size_kb(lambda x: x)  # lambdas cannot be pickled


class TestSaveLoad:
    def test_roundtrip_preserves_predictions(self, tmp_path, linear_problem):
        X, y, _ = linear_problem
        model = Ridge(alpha=0.5).fit(X, y)
        path = save_model(model, tmp_path / "ridge.pkl")
        restored = load_model(path)
        assert np.allclose(restored.predict(X[:10]), model.predict(X[:10]))

    def test_roundtrip_full_learnedwmp(self, tmp_path, tpcds_small):
        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:200])
        expected = model.predict_workload(tpcds_small.test_records[:10])
        restored = load_model(save_model(model, tmp_path / "wmp.pkl"))
        assert restored.predict_workload(tpcds_small.test_records[:10]) == pytest.approx(expected)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_model(tmp_path / "missing.pkl")

    def test_save_to_invalid_path_raises(self, linear_problem, tmp_path):
        X, y, _ = linear_problem
        model = Ridge().fit(X, y)
        with pytest.raises(SerializationError):
            save_model(model, tmp_path / "no_such_dir" / "model.pkl")
