"""Tests for model persistence and size accounting."""

import json
import pickle
import struct

import numpy as np
import pytest

from repro.core.model import LearnedWMP
from repro.core.serialization import (
    FORMAT_VERSION,
    MAGIC,
    load_model,
    read_model_header,
    save_model,
    serialized_size_kb,
)
from repro.exceptions import SerializationError
from repro.ml.linear import Ridge


class TestSerializedSize:
    def test_size_positive_and_grows_with_model(self, linear_problem):
        X, y, _ = linear_problem
        small = Ridge().fit(X[:, :2], y)
        large = Ridge().fit(np.hstack([X] * 50), y)
        assert serialized_size_kb(small) > 0.0
        assert serialized_size_kb(large) > serialized_size_kb(small)

    def test_unpicklable_model_raises(self):
        with pytest.raises(SerializationError):
            serialized_size_kb(lambda x: x)  # lambdas cannot be pickled


class TestSaveLoad:
    def test_roundtrip_preserves_predictions(self, tmp_path, linear_problem):
        X, y, _ = linear_problem
        model = Ridge(alpha=0.5).fit(X, y)
        path = save_model(model, tmp_path / "ridge.pkl")
        restored = load_model(path)
        assert np.allclose(restored.predict(X[:10]), model.predict(X[:10]))

    def test_roundtrip_full_learnedwmp(self, tmp_path, tpcds_small):
        model = LearnedWMP(regressor="ridge", n_templates=8, batch_size=10, random_state=0)
        model.fit(tpcds_small.train_records[:200])
        expected = model.predict_workload(tpcds_small.test_records[:10])
        restored = load_model(save_model(model, tmp_path / "wmp.pkl"))
        assert restored.predict_workload(tpcds_small.test_records[:10]) == pytest.approx(expected)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_model(tmp_path / "missing.pkl")

    def test_save_to_invalid_path_raises(self, linear_problem, tmp_path):
        X, y, _ = linear_problem
        model = Ridge().fit(X, y)
        with pytest.raises(SerializationError):
            save_model(model, tmp_path / "no_such_dir" / "model.pkl")


def _write_versioned(path, header: dict, payload: bytes) -> None:
    raw = json.dumps(header).encode("utf-8")
    path.write_bytes(MAGIC + struct.pack(">I", len(raw)) + raw + payload)


class TestVersionedHeader:
    def test_save_writes_magic_and_header(self, tmp_path, linear_problem):
        X, y, _ = linear_problem
        path = save_model(Ridge().fit(X, y), tmp_path / "m.pkl")
        assert path.read_bytes().startswith(MAGIC)
        header = read_model_header(path)
        assert header["format_version"] == FORMAT_VERSION
        assert header["model_class"] == "Ridge"

    def test_legacy_headerless_pickle_still_loads(self, tmp_path, linear_problem):
        X, y, _ = linear_problem
        model = Ridge(alpha=0.5).fit(X, y)
        legacy = tmp_path / "legacy.pkl"
        legacy.write_bytes(pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL))
        assert read_model_header(legacy) is None
        restored = load_model(legacy)
        assert np.allclose(restored.predict(X[:5]), model.predict(X[:5]))

    def test_future_format_version_raises_clearly(self, tmp_path):
        path = tmp_path / "future.pkl"
        _write_versioned(
            path,
            {"format_version": FORMAT_VERSION + 1, "model_class": "Ridge"},
            pickle.dumps(object()),
        )
        with pytest.raises(SerializationError, match="format version"):
            load_model(path)

    def test_invalid_format_version_raises(self, tmp_path):
        path = tmp_path / "bad.pkl"
        _write_versioned(path, {"format_version": "one"}, b"")
        with pytest.raises(SerializationError, match="invalid format version"):
            load_model(path)

    def test_corrupt_header_raises(self, tmp_path):
        path = tmp_path / "corrupt.pkl"
        raw = b"this is not json"
        path.write_bytes(MAGIC + struct.pack(">I", len(raw)) + raw)
        with pytest.raises(SerializationError, match="corrupt header"):
            load_model(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "truncated.pkl"
        path.write_bytes(MAGIC + struct.pack(">I", 500) + b"{}")
        with pytest.raises(SerializationError, match="truncated"):
            read_model_header(path)

    def test_expected_class_match_and_mismatch(self, tmp_path, linear_problem):
        X, y, _ = linear_problem
        path = save_model(Ridge().fit(X, y), tmp_path / "m.pkl")
        assert load_model(path, expected_class="Ridge") is not None
        with pytest.raises(SerializationError, match="expected 'LearnedWMP'"):
            load_model(path, expected_class="LearnedWMP")

    def test_expected_class_checked_for_legacy_files(self, tmp_path, linear_problem):
        X, y, _ = linear_problem
        legacy = tmp_path / "legacy.pkl"
        legacy.write_bytes(pickle.dumps(Ridge().fit(X, y)))
        with pytest.raises(SerializationError, match="expected 'LearnedWMP'"):
            load_model(legacy, expected_class="LearnedWMP")

    def test_corrupt_payload_raises_serialization_error(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        _write_versioned(
            path, {"format_version": FORMAT_VERSION, "model_class": "X"}, b"\x00garbage"
        )
        with pytest.raises(SerializationError, match="unpickle"):
            load_model(path)
